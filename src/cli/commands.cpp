// Implementation of `proxima list|run|report|profile`.
//
// `run` executes scenarios through the parallel engine (fixed size, or
// `--adaptive`: convergence-driven growth with deterministic batch
// boundaries) and prints timing summaries plus a times digest that is
// bit-stable across worker counts.  `report` additionally runs the MBPTA
// pipeline and renders the pWCET curve (text plot / JSON / CSV).
// `profile` renders the merged observability registry; `--trace-out`
// attaches a Chrome trace_event timeline to any campaign command.
//
// The execution plumbing and JSON section writers live in
// `proxima::cli::detail` (exec_common.hpp) because sweep.cpp assembles its
// per-cell scenario objects from the same pieces.
#include "cli.hpp"

#include "casestudy/fingerprint.hpp"
#include "cli/exec_common.hpp"
#include "cli/json_writer.hpp"
#include "exec/engine.hpp"
#include "exec/registry.hpp"
#include "exec/seed.hpp"
#include "mbpta/mbpta.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "trace/report.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace proxima::cli {

namespace detail {

std::vector<std::string> selected_scenarios(const CampaignOptions& options) {
  const exec::ScenarioRegistry& registry = exec::ScenarioRegistry::global();
  if (options.all) {
    return registry.names();
  }
  for (const std::string& name : options.scenarios) {
    (void)registry.at(name); // throws std::out_of_range with the catalogue
  }
  return options.scenarios;
}

casestudy::CampaignConfig scenario_config(const std::string& name,
                                          const CampaignOptions& options) {
  casestudy::CampaignConfig config =
      exec::ScenarioRegistry::global().at(name).make_config(options.runs);
  config.vm_core = options.vm_core;
  if (options.randomisation) {
    config.randomisation = *options.randomisation;
  }
  if (options.seed) {
    // One knob reseeds the whole campaign: the layout stream gets a
    // SplitMix64-mixed companion so the two streams never coincide.
    config.input_seed = *options.seed;
    config.layout_seed = exec::splitmix64_mix(*options.seed);
  }
  if (options.frames) {
    if (!config.hypervisor) {
      throw UsageError("--frames: scenario '" + name +
                       "' does not run on the hypervisor");
    }
    config.hypervisor->frames = *options.frames;
  }
  return config;
}

std::uint64_t effective_batch(const CampaignOptions& options) {
  if (options.batch_runs != 0) {
    return options.batch_runs;
  }
  return std::max<std::uint64_t>(50, options.runs / 10);
}

exec::ConvergenceOptions convergence_options(const CampaignOptions& options) {
  exec::ConvergenceOptions convergence;
  convergence.batch_runs = effective_batch(options);
  convergence.max_runs = options.runs; // --runs is the adaptive budget
  convergence.controller.target_exceedance = 1e-12;
  convergence.controller.epsilon = 0.01;
  convergence.controller.stable_rounds = 3;
  convergence.controller.min_samples =
      std::min<std::size_t>(200, options.runs);
  convergence.controller.mbpta.block_size = mbpta::auto_block_size(options.runs);
  return convergence;
}

Execution execute_scenario(const std::string& name,
                           const CampaignOptions& options,
                           obs::Timeline* timeline, std::ostream& err) {
  Execution execution;
  execution.name = name;
  execution.config = scenario_config(name, options);
  // The registry is always collected: the delta-snapshot capture is off the
  // per-instruction path, and every output mode can then offer the metrics
  // digest as a determinism witness (see bench_obs_overhead for the cost).
  execution.config.collect_metrics = true;
  execution.config.timeline = timeline;
  exec::EngineOptions engine_options;
  engine_options.workers = options.workers;
  if (options.progress) {
    // The meter serialises callback invocations and coalesces bursts, so a
    // plain stream write is safe here even though workers drive it.
    engine_options.progress = [&err, name](std::uint64_t completed,
                                           std::uint64_t total) {
      err << '\r' << name << ": " << completed << '/' << total << " runs"
          << std::flush;
    };
  }
  // `resolved_workers` depends only on the options, so a probe engine
  // answers for the store-backed path too (the store builds its own).
  const exec::CampaignEngine probe(engine_options);
  const bool store_backed = !options.store_dir.empty();

  const auto start = std::chrono::steady_clock::now();
  if (options.adaptive) {
    execution.budget = options.runs;
    execution.batch_runs = effective_batch(options);
    // Adaptive campaigns shard one batch at a time.
    execution.workers = probe.resolved_workers(
        std::min<std::uint64_t>(execution.batch_runs, execution.budget));
    exec::AdaptiveCampaignResult adaptive;
    if (store_backed) {
      const store::CampaignStore store(options.store_dir);
      store::StoreStats stats;
      adaptive =
          store.run_adaptive(name, execution.config,
                             convergence_options(options),
                             std::move(engine_options), &stats);
      execution.store = std::move(stats);
    } else {
      adaptive =
          probe.run_adaptive(execution.config, convergence_options(options));
    }
    execution.result = std::move(adaptive.campaign);
    adaptive.campaign = {};
    execution.adaptive = std::move(adaptive);
  } else {
    execution.workers = probe.resolved_workers(options.runs);
    if (store_backed) {
      const store::CampaignStore store(options.store_dir);
      store::StoreStats stats;
      execution.result = store.run(name, execution.config,
                                   std::move(engine_options), &stats);
      execution.store = std::move(stats);
    } else {
      execution.result = probe.run(execution.config);
    }
  }
  execution.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  if (options.progress) {
    err << '\n'; // terminate the live \r line before the next scenario
  }
  return execution;
}

/// Serialise the timeline to `--trace-out FILE`.  Failures surface as a
/// campaign fault (exit 3): the campaign DID run, but its requested
/// artefact could not be produced.
void write_trace_file(const obs::Timeline& timeline, const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw std::runtime_error("--trace-out: cannot open '" + path +
                             "' for writing");
  }
  timeline.write_json(file);
  file.flush();
  if (!file) {
    throw std::runtime_error("--trace-out: write to '" + path + "' failed");
  }
}

/// Execute every selected scenario (campaign fault on a later scenario
/// propagates BEFORE any output, so machine consumers never see a
/// truncated document), then write the shared `--trace-out` timeline.
std::vector<Execution> execute_selected(const CampaignOptions& options,
                                        std::ostream& err) {
  const std::vector<std::string> names = selected_scenarios(options);
  std::optional<obs::Timeline> timeline;
  if (!options.trace_out.empty()) {
    timeline.emplace();
  }
  std::vector<Execution> executions;
  executions.reserve(names.size());
  for (const std::string& name : names) {
    executions.push_back(execute_scenario(
        name, options, timeline ? &*timeline : nullptr, err));
  }
  if (timeline) {
    write_trace_file(*timeline, options.trace_out);
  }
  for (Execution& execution : executions) {
    execution.config.timeline = nullptr; // the local timeline dies here
  }
  return executions;
}

const char* vm_core_name(vm::VmCore core) {
  switch (core) {
  case vm::VmCore::kFast:
    return "fast";
  case vm::VmCore::kFastSb:
    return "fast-sb";
  case vm::VmCore::kReference:
    return "reference";
  }
  return "?";
}

void write_adaptive_json(JsonWriter& json, const Execution& execution) {
  json.key("adaptive");
  if (!execution.adaptive) {
    json.null();
    return;
  }
  const exec::AdaptiveCampaignResult& adaptive = *execution.adaptive;
  json.begin_object();
  json.key("budget").value(execution.budget);
  json.key("batch_runs").value(execution.batch_runs);
  json.key("batches").value(std::uint64_t{adaptive.batches});
  json.key("converged").value(adaptive.converged);
  json.key("capped").value(adaptive.capped);
  json.key("estimates").begin_array();
  for (const double estimate : adaptive.estimates) {
    json.value(estimate); // NaN (i.i.d. failed) renders as null
  }
  json.end_array();
  json.end_object();
}

/// A `--partition` name matching no partition of any selected scenario is
/// a usage error, raised BEFORE any output so machine consumers never see
/// a well-formed document that silently dropped the filter.
void validate_partition_filter(const std::vector<const Execution*>& executions,
                               const CampaignOptions& options) {
  if (!options.partition) {
    return;
  }
  std::vector<std::string> available;
  for (const Execution* execution : executions) {
    for (const trace::PartitionSeries& series :
         casestudy::partition_series(execution->result.samples)) {
      if (series.partition == *options.partition) {
        return;
      }
      available.push_back(series.partition);
    }
  }
  std::string message =
      "--partition: no partition named '" + *options.partition + "'";
  if (available.empty()) {
    message += " (no hv/ scenario selected)";
  } else {
    message += "; partitions:";
    for (const std::string& name : available) {
      message += ' ' + name;
    }
  }
  throw UsageError(message);
}

/// Restrict flattened series to the `--partition` filter (validated
/// upstream), BEFORE the report is built: no analysis on discarded rows.
std::vector<trace::PartitionSeries>
filtered_series(const Execution& execution, const CampaignOptions& options) {
  std::vector<trace::PartitionSeries> series =
      casestudy::partition_series(execution.result.samples);
  if (options.partition) {
    std::erase_if(series, [&](const trace::PartitionSeries& s) {
      return s.partition != *options.partition;
    });
  }
  return series;
}

/// Per-partition sections of an hv/ scenario (null on the bare platform):
/// activation statistics over the cycles the schedule granted, budget
/// violations, and the per-partition Gumbel pWCET where the series carries
/// a fit.  `--partition` restricts the sections to one name.
void write_partitions_json(JsonWriter& json, const Execution& execution,
                           const CampaignOptions& options) {
  json.key("partitions");
  if (execution.result.samples.empty() ||
      execution.result.samples.front().partitions.empty()) {
    json.null();
    return;
  }
  const trace::PartitionReport report =
      trace::PartitionReport::build(filtered_series(execution, options));
  const std::string measured_partition =
      casestudy::measured_partition_name(execution.config.measured);
  json.begin_array();
  for (const trace::PartitionReport::Entry& entry : report.entries) {
    json.begin_object();
    json.key("name").value(entry.partition);
    json.key("measured").value(entry.partition == measured_partition);
    json.key("activations").value(std::uint64_t{entry.summary.count});
    json.key("min").value(entry.summary.min);
    json.key("mean").value(entry.summary.mean);
    json.key("moet").value(entry.summary.max);
    json.key("stddev").value(entry.summary.stddev);
    json.key("overruns").value(entry.overruns);
    json.key("iid_passes").value(entry.iid_passes);
    json.key("pwcet");
    if (entry.pwcet) {
      json.value(*entry.pwcet);
    } else {
      json.null();
    }
    json.key("pwcet_exceedance").value(report.target_exceedance);
    json.end_object();
  }
  json.end_array();
}

void print_partitions_text(std::ostream& out, const Execution& execution,
                           const CampaignOptions& options) {
  const std::vector<trace::PartitionSeries> series =
      filtered_series(execution, options);
  if (series.empty()) {
    return; // bare platform, or the filter names another scenario's guest
  }
  out << trace::PartitionReport::build(series).to_string();
}

void write_times_json(JsonWriter& json, const Execution& execution) {
  const mbpta::Summary summary = mbpta::summarise(execution.result.times);
  json.key("times").begin_object();
  json.key("n").value(std::uint64_t{summary.count});
  json.key("min").value(summary.min);
  json.key("mean").value(summary.mean);
  json.key("max").value(summary.max);
  json.key("stddev").value(summary.stddev);
  json.key("digest").value(trace::times_digest_hex(execution.result.times));
  json.end_object();
}

void write_throughput_json(JsonWriter& json, const Execution& execution) {
  json.key("throughput").begin_object();
  json.key("wall_seconds").value(execution.seconds);
  json.key("guest_instructions").value(execution.guest_instructions());
  json.key("minstr_per_second").value(execution.minstr_per_second());
  json.end_object();
}

/// The `"metrics"` section of run/report/profile JSON: the merged registry
/// keyed by determinism class.  The key is named "digest" like the times
/// digest, so a `grep '"digest"'` across worker counts checks BOTH
/// invariants at once.  Gauges land under "wall": wall-clock/platform
/// facts, legitimately different between identical campaigns.
void write_metrics_json(JsonWriter& json, const Execution& execution) {
  const obs::MetricsSnapshot& metrics = execution.result.metrics;
  json.key("metrics").begin_object();
  json.key("digest").value(obs::metrics_digest_hex(metrics));
  json.key("counters").begin_object();
  for (const auto& [name, value] : metrics.counters) {
    json.key(name).value(value);
  }
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& [name, histogram] : metrics.histograms) {
    json.key(name).begin_object();
    json.key("count").value(histogram.count);
    json.key("min").value(histogram.count == 0 ? 0 : histogram.min);
    json.key("max").value(histogram.max);
    json.key("mean").value(histogram.mean());
    // Sparse [bit_width, count] pairs; bucket b holds values of b bits.
    json.key("buckets").begin_array();
    for (std::size_t bit = 0; bit < obs::Histogram::kBuckets; ++bit) {
      if (histogram.buckets[bit] == 0) {
        continue;
      }
      json.begin_array();
      json.value(std::uint64_t{bit});
      json.value(histogram.buckets[bit]);
      json.end_array();
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();
  json.key("series").begin_object();
  for (const auto& [name, values] : metrics.series) {
    json.key(name).begin_array();
    for (const double value : values) {
      json.value(value); // NaN (i.i.d. failed evaluation) renders as null
    }
    json.end_array();
  }
  json.end_object();
  json.key("wall").begin_object();
  for (const auto& [name, value] : metrics.gauges) {
    json.key(name).value(value);
  }
  json.end_object();
  json.end_object();
}

void print_metrics_text(std::ostream& out, const Execution& execution) {
  const obs::MetricsSnapshot& metrics = execution.result.metrics;
  char line[200];
  out << execution.name << " (" << execution.result.times.size()
      << " runs, metrics digest " << obs::metrics_digest_hex(metrics)
      << ")\n";
  if (!metrics.counters.empty()) {
    out << "  counters:\n";
    for (const auto& [name, value] : metrics.counters) {
      std::snprintf(line, sizeof(line), "    %-36s %20llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out << line;
    }
  }
  if (!metrics.histograms.empty()) {
    out << "  histograms:\n";
    for (const auto& [name, histogram] : metrics.histograms) {
      std::snprintf(line, sizeof(line),
                    "    %-36s n=%llu min=%llu mean=%.1f max=%llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(histogram.count),
                    static_cast<unsigned long long>(
                        histogram.count == 0 ? 0 : histogram.min),
                    histogram.mean(),
                    static_cast<unsigned long long>(histogram.max));
      out << line;
    }
  }
  if (!metrics.series.empty()) {
    out << "  series:\n";
    for (const auto& [name, values] : metrics.series) {
      out << "    " << name << " (" << values.size() << "):";
      for (const double value : values) {
        std::snprintf(line, sizeof(line), " %.6g", value);
        out << line;
      }
      out << '\n';
    }
  }
  if (!metrics.gauges.empty()) {
    out << "  wall:\n";
    for (const auto& [name, value] : metrics.gauges) {
      std::snprintf(line, sizeof(line), "    %-36s %20.6f\n", name.c_str(),
                    value);
      out << line;
    }
  }
}

/// CSV rows `scenario,class,metric,value`: histograms flatten to
/// .count/.min/.mean/.max rows, series to indexed rows — every value a
/// plain number except the digest row's hex string.
void print_metrics_csv(std::ostream& out, const Execution& execution) {
  const obs::MetricsSnapshot& metrics = execution.result.metrics;
  out << execution.name << ",digest,metrics_digest,"
      << obs::metrics_digest_hex(metrics) << '\n';
  for (const auto& [name, value] : metrics.counters) {
    out << execution.name << ",counter," << name << ',' << value << '\n';
  }
  for (const auto& [name, histogram] : metrics.histograms) {
    out << execution.name << ",histogram," << name << ".count,"
        << histogram.count << '\n';
    out << execution.name << ",histogram," << name << ".min,"
        << (histogram.count == 0 ? 0 : histogram.min) << '\n';
    out << execution.name << ",histogram," << name << ".mean,"
        << histogram.mean() << '\n';
    out << execution.name << ",histogram," << name << ".max," << histogram.max
        << '\n';
  }
  for (const auto& [name, values] : metrics.series) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      out << execution.name << ",series," << name << '[' << i << "],"
          << values[i] << '\n';
    }
  }
  for (const auto& [name, value] : metrics.gauges) {
    out << execution.name << ",wall," << name << ',' << value << '\n';
  }
}

void write_execution_header_json(JsonWriter& json, const Execution& execution,
                                 const CampaignOptions& options) {
  json.key("name").value(execution.name);
  // The measured target: which program's UoA the times/digest describe
  // ("control" / "image").  Under hv/ scenarios this is the measured
  // partition; the guests appear in "partitions" only.
  json.key("measured").value(
      casestudy::measured_target_name(execution.config.measured));
  json.key("vm_core").value(vm_core_name(options.vm_core));
  json.key("seed").begin_object();
  json.key("input").value(execution.config.input_seed);
  json.key("layout").value(execution.config.layout_seed);
  json.end_object();
  json.key("runs").value(
      std::uint64_t{execution.result.times.size()});
  json.key("workers").value(execution.workers);
  json.key("frames");
  if (execution.config.hypervisor) {
    json.value(execution.config.hypervisor->frames);
  } else {
    json.null();
  }
  // Store-backed campaigns record their cell provenance; the counts are
  // NOT compared by diff (a warm cache legitimately differs from a cold
  // one) — the sweep manifest is what asserts simulated_runs == 0.
  json.key("store");
  if (execution.store) {
    json.begin_object();
    json.key("fingerprint")
        .value(casestudy::fingerprint_hex(execution.store->fingerprint));
    json.key("cell").value(execution.store->cell_path);
    json.key("stored_runs").value(execution.store->stored_runs);
    json.key("simulated_runs").value(execution.store->simulated_runs);
    json.end_object();
  } else {
    json.null();
  }
}

void print_adaptive_text(std::ostream& out, const Execution& execution) {
  if (!execution.adaptive) {
    return;
  }
  const exec::AdaptiveCampaignResult& adaptive = *execution.adaptive;
  out << "  adaptive: " << execution.result.times.size() << " of "
      << execution.budget << " budgeted runs ("
      << (adaptive.converged ? "converged" : "budget exhausted") << " after "
      << adaptive.batches << " batches of " << execution.batch_runs << ")\n";
  // Estimates exist only for batches past the controller's min_samples,
  // so they are numbered as evaluations rather than batches.
  std::size_t index = 0;
  for (const double estimate : adaptive.estimates) {
    std::ostringstream line;
    if (std::isnan(estimate)) {
      line << "i.i.d. failed";
    } else {
      line << "pWCET estimate " << estimate;
    }
    out << "    evaluation " << ++index << ": " << line.str() << '\n';
  }
}

Analysed analyse_execution(const Execution& execution,
                           const CampaignOptions& options) {
  Analysed analysed;
  mbpta::MbptaConfig analysis_config;
  if (options.adaptive) {
    // The reported fit must be the estimator whose stability the
    // convergence decision certified: reuse the controller's tail-fit
    // config rather than re-deriving a block size from the stop count.
    analysis_config = convergence_options(options).controller.mbpta;
  } else {
    analysis_config.block_size =
        mbpta::auto_block_size(execution.result.times.size());
  }
  try {
    analysed.analysis =
        mbpta::analyse(execution.result.times, analysis_config);
  } catch (const std::invalid_argument& error) {
    analysed.error = error.what(); // campaign too short for the fit
  }
  return analysed;
}

void write_analysis_json(JsonWriter& json, const Analysed& analysed,
                         int decades) {
  if (!analysed.analysis) {
    json.key("analysis").null();
    json.key("analysis_error").value(analysed.error);
    return;
  }
  const mbpta::MbptaAnalysis& analysis = *analysed.analysis;
  json.key("analysis").begin_object();
  json.key("iid").begin_object();
  json.key("independence_p").value(analysis.iid.independence.p_value);
  json.key("identical_distribution_p")
      .value(analysis.iid.identical_distribution.p_value);
  json.key("passes").value(analysis.applicable());
  json.end_object();
  json.key("gumbel").begin_object();
  json.key("location").value(analysis.model.info().gumbel.location);
  json.key("scale").value(analysis.model.info().gumbel.scale);
  json.end_object();
  json.key("curve").begin_array();
  for (const auto& [cycles, p] : analysis.model.curve(decades)) {
    json.begin_object();
    json.key("exceedance").value(p);
    json.key("pwcet_cycles").value(cycles);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

} // namespace detail

using namespace detail;

int cmd_list(const CampaignOptions& options, std::ostream& out) {
  const exec::ScenarioRegistry& registry = exec::ScenarioRegistry::global();
  const std::vector<std::string> names = registry.names();
  if (options.format == OutputFormat::kJson) {
    JsonWriter json(out);
    json.begin_object();
    json.key("command").value("list");
    json.key("scenarios").begin_array();
    for (const std::string& name : names) {
      json.begin_object();
      json.key("name").value(name);
      json.key("description").value(registry.at(name).description);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    return 0;
  }
  for (const std::string& name : names) {
    char line[160];
    std::snprintf(line, sizeof(line), "%-28s %s\n", name.c_str(),
                  registry.at(name).description.c_str());
    out << line;
  }
  out << '(' << names.size() << " scenarios)\n";
  return 0;
}

int cmd_run(const CampaignOptions& options, std::ostream& out,
            std::ostream& err) {
  const std::vector<Execution> executions = execute_selected(options, err);
  std::vector<const Execution*> executed;
  for (const Execution& execution : executions) {
    executed.push_back(&execution);
  }
  validate_partition_filter(executed, options);

  if (options.format == OutputFormat::kJson) {
    JsonWriter json(out);
    json.begin_object();
    json.key("command").value("run");
    json.key("scenarios").begin_array();
    for (const Execution& execution : executions) {
      json.begin_object();
      write_execution_header_json(json, execution, options);
      write_adaptive_json(json, execution);
      write_times_json(json, execution);
      write_partitions_json(json, execution, options);
      write_throughput_json(json, execution);
      write_metrics_json(json, execution);
      json.key("verified_runs").value(execution.result.verified_runs);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    return 0;
  }

  if (options.format == OutputFormat::kCsv) {
    out << "scenario,runs,min,mean,max,stddev,digest,converged,"
           "wall_seconds,minstr_per_second\n";
    for (const Execution& execution : executions) {
      const mbpta::Summary summary = mbpta::summarise(execution.result.times);
      out << execution.name << ',' << summary.count << ',' << summary.min
          << ',' << summary.mean << ',' << summary.max << ',' << summary.stddev
          << ',' << trace::times_digest_hex(execution.result.times) << ','
          << (execution.adaptive
                  ? (execution.adaptive->converged ? "true" : "false")
                  : "")
          << ',' << execution.seconds << ',' << execution.minstr_per_second()
          << '\n';
    }
    return 0;
  }

  for (const Execution& execution : executions) {
    const trace::TimingReport report =
        trace::TimingReport::from_times(execution.result.times);
    out << execution.name << " (" << vm_core_name(options.vm_core) << " core, "
        << execution.result.times.size() << " runs, measured "
        << casestudy::measured_target_name(execution.config.measured)
        << ")\n";
    out << "  " << report.to_string() << '\n';
    print_adaptive_text(out, execution);
    print_partitions_text(out, execution, options);
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %.3f s wall, %.1f Minstr/s, digest %s\n",
                  execution.seconds, execution.minstr_per_second(),
                  trace::times_digest_hex(execution.result.times).c_str());
    out << line;
  }
  return 0;
}

int cmd_report(const CampaignOptions& options, std::ostream& out,
               std::ostream& err) {
  int exit_code = 0;

  // Execute and analyse everything before emitting (see cmd_run).
  struct Reported {
    Execution execution;
    Analysed analysed;
  };
  std::vector<Execution> executions = execute_selected(options, err);
  std::vector<Reported> reports;
  reports.reserve(executions.size());
  for (Execution& execution : executions) {
    Analysed analysed = analyse_execution(execution, options);
    if (!analysed.analysis) {
      exit_code = 1;
    }
    reports.push_back(Reported{std::move(execution), std::move(analysed)});
  }
  std::vector<const Execution*> executed;
  for (const Reported& reported : reports) {
    executed.push_back(&reported.execution);
  }
  validate_partition_filter(executed, options);

  std::optional<JsonWriter> json;
  if (options.format == OutputFormat::kJson) {
    json.emplace(out);
    json->begin_object();
    json->key("command").value("report");
    json->key("scenarios").begin_array();
  } else if (options.format == OutputFormat::kCsv) {
    out << "scenario,exceedance_probability,pwcet_cycles\n";
  }

  for (const Reported& reported : reports) {
    const Execution& execution = reported.execution;
    const std::size_t n = execution.result.times.size();
    const std::optional<mbpta::MbptaAnalysis>& analysis =
        reported.analysed.analysis;
    const std::string& analysis_error = reported.analysed.error;

    if (json) {
      json->begin_object();
      write_execution_header_json(*json, execution, options);
      write_adaptive_json(*json, execution);
      write_times_json(*json, execution);
      write_partitions_json(*json, execution, options);
      write_metrics_json(*json, execution);
      write_analysis_json(*json, reported.analysed, options.decades);
      json->end_object();
      continue;
    }

    if (options.format == OutputFormat::kCsv) {
      if (analysis) {
        for (const auto& [cycles, p] : analysis->model.curve(options.decades)) {
          out << execution.name << ',' << p << ',' << cycles << '\n';
        }
      }
      continue;
    }

    const trace::TimingReport report =
        trace::TimingReport::from_times(execution.result.times);
    out << "== " << execution.name << " (" << n << " runs, measured "
        << casestudy::measured_target_name(execution.config.measured)
        << ") ==\n";
    out << report.to_string() << '\n';
    print_adaptive_text(out, execution);
    print_partitions_text(out, execution, options);
    if (!analysis) {
      out << "MBPTA analysis not possible: " << analysis_error << '\n';
      continue;
    }
    char line[200];
    std::snprintf(line, sizeof(line),
                  "i.i.d.: Ljung-Box p=%.3f, KS p=%.3f -> %s\n",
                  analysis->iid.independence.p_value,
                  analysis->iid.identical_distribution.p_value,
                  analysis->applicable() ? "EVT applicable"
                                         : "NOT applicable");
    out << line;
    std::snprintf(line, sizeof(line),
                  "Gumbel tail: location=%.1f scale=%.3f (block %u)\n",
                  analysis->model.info().gumbel.location,
                  analysis->model.info().gumbel.scale,
                  analysis->model.info().block_size);
    out << line;
    std::snprintf(line, sizeof(line),
                  "pWCET: %.0f @ 1e-12, %.0f @ 1e-15 (MOET %.0f, "
                  "MOET+20%% %.0f)\n",
                  analysis->pwcet(1e-12), analysis->pwcet(1e-15),
                  report.moet(), report.mbdta_bound());
    out << line;
    out << trace::ascii_exceedance_plot(analysis->model,
                                        execution.result.times);
  }

  if (json) {
    json->end_array();
    json->end_object();
  }
  return exit_code;
}

int cmd_profile(const CampaignOptions& options, std::ostream& out,
                std::ostream& err) {
  const std::vector<Execution> executions = execute_selected(options, err);

  if (options.format == OutputFormat::kJson) {
    JsonWriter json(out);
    json.begin_object();
    json.key("command").value("profile");
    json.key("scenarios").begin_array();
    for (const Execution& execution : executions) {
      json.begin_object();
      write_execution_header_json(json, execution, options);
      write_metrics_json(json, execution);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    return 0;
  }

  if (options.format == OutputFormat::kCsv) {
    out << "scenario,class,metric,value\n";
    for (const Execution& execution : executions) {
      print_metrics_csv(out, execution);
    }
    return 0;
  }

  for (const Execution& execution : executions) {
    print_metrics_text(out, execution);
  }
  return 0;
}

} // namespace proxima::cli
