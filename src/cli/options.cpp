#include "options.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstring>
#include <string_view>

namespace proxima::cli {

namespace {

template <typename T>
T parse_number(std::string_view flag, std::string_view text) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw UsageError(std::string(flag) + ": expected a number, got '" +
                     std::string(text) + "'");
  }
  return value;
}

OutputFormat parse_format(std::string_view text) {
  if (text == "text") {
    return OutputFormat::kText;
  }
  if (text == "json") {
    return OutputFormat::kJson;
  }
  if (text == "csv") {
    return OutputFormat::kCsv;
  }
  throw UsageError("--format: expected text|json|csv, got '" +
                   std::string(text) + "'");
}

/// Levenshtein edit distance, small-string DP (core names are short) —
/// the same did-you-mean treatment unknown scenarios get in the registry.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) {
    row[j] = j;
  }
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

vm::VmCore parse_vm_core(std::string_view text) {
  static constexpr std::pair<std::string_view, vm::VmCore> kCores[] = {
      {"fast", vm::VmCore::kFast},
      {"fast-sb", vm::VmCore::kFastSb},
      {"reference", vm::VmCore::kReference},
  };
  for (const auto& [name, core] : kCores) {
    if (text == name) {
      return core;
    }
  }
  std::string message = "--vm-core: expected fast|fast-sb|reference, got '" +
                        std::string(text) + "'";
  const std::size_t threshold = std::max<std::size_t>(2, text.size() / 3);
  std::vector<std::pair<std::size_t, std::string_view>> scored;
  for (const auto& [name, core] : kCores) {
    const std::size_t distance = edit_distance(text, name);
    if (distance <= threshold) {
      scored.emplace_back(distance, name);
    }
  }
  std::sort(scored.begin(), scored.end());
  if (!scored.empty()) {
    message += "; did you mean:";
    for (const auto& [distance, name] : scored) {
      message += ' ';
      message += name;
    }
    message += '?';
  }
  throw UsageError(message);
}

casestudy::Randomisation parse_randomisation(std::string_view text) {
  static constexpr std::pair<std::string_view, casestudy::Randomisation>
      kArms[] = {
          {"cots", casestudy::Randomisation::kNone},
          {"dsr", casestudy::Randomisation::kDsr},
          {"dsr-ondemand", casestudy::Randomisation::kDsrOnDemand},
          {"static", casestudy::Randomisation::kStatic},
          {"hwrand", casestudy::Randomisation::kHardware},
      };
  for (const auto& [name, arm] : kArms) {
    if (text == name) {
      return arm;
    }
  }
  std::string message =
      "--randomisation: expected cots|dsr|dsr-ondemand|static|hwrand, got '" +
      std::string(text) + "'";
  const std::size_t threshold = std::max<std::size_t>(2, text.size() / 3);
  std::vector<std::pair<std::size_t, std::string_view>> scored;
  for (const auto& [name, arm] : kArms) {
    const std::size_t distance = edit_distance(text, name);
    if (distance <= threshold) {
      scored.emplace_back(distance, name);
    }
  }
  std::sort(scored.begin(), scored.end());
  if (!scored.empty()) {
    message += "; did you mean:";
    for (const auto& [distance, name] : scored) {
      message += ' ';
      message += name;
    }
    message += '?';
  }
  throw UsageError(message);
}

} // namespace

Command parse_command_line(std::span<const char* const> args) {
  Command command;
  if (args.empty()) {
    throw UsageError("missing command: expected "
                     "list|run|report|profile|lint|sweep|diff|help");
  }
  const std::string_view verb = args[0];
  if (verb == "help" || verb == "--help" || verb == "-h") {
    command.kind = Command::Kind::kHelp;
    return command;
  }
  if (verb == "list") {
    command.kind = Command::Kind::kList;
  } else if (verb == "run") {
    command.kind = Command::Kind::kRun;
  } else if (verb == "report") {
    command.kind = Command::Kind::kReport;
  } else if (verb == "diff") {
    command.kind = Command::Kind::kDiff;
  } else if (verb == "profile") {
    command.kind = Command::Kind::kProfile;
  } else if (verb == "sweep") {
    command.kind = Command::Kind::kSweep;
  } else if (verb == "lint") {
    command.kind = Command::Kind::kLint;
  } else {
    throw UsageError(
        "unknown command '" + std::string(verb) +
        "': expected list|run|report|profile|lint|sweep|diff|help");
  }

  if (command.kind == Command::Kind::kDiff) {
    // diff takes two positional report paths (or one plus --against) and
    // --tolerance; none of the campaign flags apply.
    std::vector<std::string> paths;
    for (std::size_t i = 1; i < args.size(); ++i) {
      const std::string_view flag = args[i];
      if (flag == "--against") {
        if (i + 1 >= args.size()) {
          throw UsageError("--against: missing value");
        }
        command.diff.against = std::string(args[++i]);
        if (command.diff.against.empty()) {
          throw UsageError("--against: expected a scenario name");
        }
      } else if (flag == "--tolerance") {
        if (i + 1 >= args.size()) {
          throw UsageError("--tolerance: missing value");
        }
        command.diff.tolerance = parse_number<double>(flag, args[++i]);
        // from_chars accepts nan/inf: nan makes every comparison a drift,
        // inf disables them all — both are operator mistakes.
        if (!std::isfinite(command.diff.tolerance) ||
            command.diff.tolerance < 0.0) {
          throw UsageError("--tolerance: must be a finite number >= 0");
        }
      } else if (flag == "--format") {
        if (i + 1 >= args.size()) {
          throw UsageError("--format: missing value");
        }
        command.diff.format = parse_format(args[++i]);
        if (command.diff.format == OutputFormat::kCsv) {
          throw UsageError("diff --format: expected text|json");
        }
      } else if (flag.rfind("--", 0) == 0) {
        throw UsageError("unknown flag '" + std::string(flag) + "'");
      } else {
        paths.emplace_back(flag);
      }
    }
    if (!command.diff.against.empty()) {
      if (paths.size() != 1) {
        throw UsageError(
            "diff --against: expected exactly one report path "
            "(proxima diff <candidate.json> --against SCENARIO)");
      }
      command.diff.candidate = std::move(paths[0]);
      return command;
    }
    if (paths.size() != 2) {
      throw UsageError(
          "diff: expected exactly two report paths "
          "(proxima diff <baseline.json> <candidate.json>), or one plus "
          "--against SCENARIO");
    }
    command.diff.baseline = std::move(paths[0]);
    command.diff.candidate = std::move(paths[1]);
    return command;
  }

  CampaignOptions& options = command.options;
  const bool is_sweep = command.kind == Command::Kind::kSweep;
  bool saw_decades = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string_view flag = args[i];
    const auto value = [&]() -> std::string_view {
      if (i + 1 >= args.size()) {
        throw UsageError(std::string(flag) + ": missing value");
      }
      return args[++i];
    };
    const auto sweep_only = [&]() {
      if (!is_sweep) {
        throw UsageError(std::string(flag) + ": only applicable to sweep");
      }
    };
    if (flag == "--scenario") {
      options.scenarios.emplace_back(value());
    } else if (flag == "--all") {
      options.all = true;
    } else if (flag == "--runs") {
      options.runs = parse_number<std::uint32_t>(flag, value());
    } else if (flag == "--adaptive") {
      options.adaptive = true;
    } else if (flag == "--batch") {
      options.batch_runs = parse_number<std::uint64_t>(flag, value());
      if (options.batch_runs == 0) {
        throw UsageError("--batch: must be >= 1");
      }
    } else if (flag == "--workers") {
      options.workers = parse_number<unsigned>(flag, value());
      // 0 means "pick the hardware concurrency"; an explicit count is a
      // thread-spawn request, and a typo like `--workers 100000` would
      // honour it literally in execute_shards.
      if (options.workers > 512) {
        throw UsageError("--workers: expected 0..512 (0: hardware "
                         "concurrency)");
      }
    } else if (flag == "--seed") {
      if (is_sweep) {
        // Repeatable under sweep: each seed is a grid axis value.
        command.sweep.seeds.push_back(
            parse_number<std::uint64_t>(flag, value()));
      } else {
        options.seed = parse_number<std::uint64_t>(flag, value());
      }
    } else if (flag == "--store") {
      if (command.kind == Command::Kind::kList) {
        throw UsageError("--store: not applicable to list");
      }
      options.store_dir = std::string(value());
      if (options.store_dir.empty()) {
        throw UsageError("--store: expected a directory path");
      }
    } else if (flag == "--manifest") {
      sweep_only();
      command.sweep.manifest = std::string(value());
      if (command.sweep.manifest.empty()) {
        throw UsageError("--manifest: expected a file path");
      }
    } else if (flag == "--baseline") {
      sweep_only();
      command.sweep.baseline = std::string(value());
      if (command.sweep.baseline.empty()) {
        throw UsageError("--baseline: expected a file path");
      }
    } else if (flag == "--tolerance") {
      sweep_only(); // diff parses its own --tolerance above
      command.sweep.tolerance = parse_number<double>(flag, value());
      if (!std::isfinite(command.sweep.tolerance) ||
          command.sweep.tolerance < 0.0) {
        throw UsageError("--tolerance: must be a finite number >= 0");
      }
    } else if (flag == "--vm-core") {
      options.vm_core = parse_vm_core(value());
    } else if (flag == "--randomisation") {
      options.randomisation = parse_randomisation(value());
    } else if (flag == "--format") {
      options.format = parse_format(value());
    } else if (flag == "--decades") {
      saw_decades = true;
      options.decades = parse_number<int>(flag, value());
      if (options.decades < 1 || options.decades > 18) {
        throw UsageError("--decades: expected 1..18");
      }
    } else if (flag == "--frames") {
      options.frames = parse_number<std::uint32_t>(flag, value());
      // Upper bound keeps the control period (frames * minor frame, ms)
      // inside 32 bits for any scenario clock — and a million frames per
      // run is already far past any sensible schedule.
      if (*options.frames == 0 || *options.frames > 1'000'000) {
        throw UsageError("--frames: expected 1..1000000");
      }
    } else if (flag == "--partition") {
      options.partition = std::string(value());
    } else if (flag == "--trace-out") {
      options.trace_out = std::string(value());
      if (options.trace_out.empty()) {
        throw UsageError("--trace-out: expected a file path");
      }
    } else if (flag == "--progress") {
      options.progress = true;
    } else {
      throw UsageError("unknown flag '" + std::string(flag) + "'");
    }
  }

  // Flags that parse fine but do nothing in this invocation used to be
  // silently ignored — an operator asking for them got a campaign that
  // quietly ran with different settings than requested.  Reject instead.
  if (options.batch_runs != 0 && !options.adaptive) {
    throw UsageError("--batch: only meaningful with --adaptive "
                     "(fixed campaigns have no growth quantum)");
  }
  if (saw_decades && command.kind != Command::Kind::kReport && !is_sweep) {
    throw UsageError("--decades: only applicable to report/sweep "
                     "(run/profile emit no pWCET curve)");
  }

  if (is_sweep) {
    if (options.store_dir.empty()) {
      throw UsageError("sweep: --store DIR is required (the store is what "
                       "makes re-invocations skip finished cells)");
    }
    if (options.format == OutputFormat::kCsv) {
      throw UsageError("sweep --format: expected text|json");
    }
    if (options.scenarios.empty() && !options.all) {
      options.all = true; // sweep default: the whole registry
    }
  }

  if (command.kind == Command::Kind::kLint) {
    if (options.adaptive) {
      throw UsageError("--adaptive: not applicable to lint (the dynamic "
                       "confirmation runs a fixed-size campaign)");
    }
    if (!options.store_dir.empty()) {
      throw UsageError("--store: not applicable to lint (taint-mode "
                       "campaigns are not persisted)");
    }
    if (options.format == OutputFormat::kCsv) {
      throw UsageError("lint --format: expected text|json");
    }
  }

  if (command.kind != Command::Kind::kList) {
    if (options.scenarios.empty() && !options.all) {
      throw UsageError("expected --scenario NAME (repeatable) or --all");
    }
    if (!options.scenarios.empty() && options.all) {
      throw UsageError("--scenario and --all are mutually exclusive");
    }
    if (options.runs == 0) {
      throw UsageError("--runs: must be >= 1");
    }
  }
  return command;
}

std::string usage() {
  return
      "proxima — campaign driver for the DSR case-study reproduction\n"
      "\n"
      "usage: proxima <command> [options]\n"
      "\n"
      "commands:\n"
      "  list                 enumerate the scenario registry\n"
      "  run                  execute campaigns, print timing summaries\n"
      "  report               execute campaigns + full MBPTA report\n"
      "                       (i.i.d. verdict, pWCET curve, Figure-3 plot)\n"
      "  profile              execute campaigns, render the merged metrics\n"
      "                       registry (instruction mix, hierarchy, DSR,\n"
      "                       hv occupancy, engine) as text/json/csv\n"
      "  lint                 address-leak analysis of the selected\n"
      "                       scenarios: static taint pass over the guest\n"
      "                       program + dynamic taint campaign; exit 1 on\n"
      "                       any confirmed leak of layout-derived bits\n"
      "                       into the observable outputs\n"
      "  sweep                run the scenario × seed grid through the\n"
      "                       campaign store: stored cells are re-rendered\n"
      "                       without simulating, fresh cells are persisted;\n"
      "                       writes a machine-readable sweep manifest\n"
      "  diff A.json B.json   compare two saved JSON reports; exit 1 when\n"
      "                       pWCET/MOET/counter shifts exceed --tolerance\n"
      "                       (or: diff B.json --against SCENARIO to run\n"
      "                       the baseline scenario on the fly)\n"
      "  help                 this text\n"
      "\n"
      "options (run/report):\n"
      "  --scenario NAME      registry scenario to run (repeatable)\n"
      "  --all                run every registry scenario instead\n"
      "  --runs N             measured runs, or the budget under --adaptive\n"
      "                       (default 1000)\n"
      "  --adaptive           grow the campaign until the MBPTA convergence\n"
      "                       criterion holds (deterministic batch\n"
      "                       boundaries: bit-identical at any --workers)\n"
      "  --batch N            adaptive growth quantum (default max(50, runs/10))\n"
      "  --workers W          engine worker threads (default: hardware)\n"
      "  --seed S             campaign seed (input seed S, layout seed\n"
      "                       splitmix64(S); default: the paper's 2017/611085)\n"
      "  --vm-core C          fast-sb|fast|reference (default fast-sb, the\n"
      "                       superblock tier; all three are bit-identical)\n"
      "  --randomisation R    cots|dsr|dsr-ondemand|static|hwrand: override\n"
      "                       the scenario's randomisation technology\n"
      "                       (default: the scenario's registered arm)\n"
      "  --format F           text|json|csv (default text; list: text|json)\n"
      "  --decades D          report: pWCET curve depth (default 16)\n"
      "  --frames N           hv/ scenarios: minor frames per measured run\n"
      "                       (default: the scenario's schedule, 10)\n"
      "  --partition NAME     restrict per-partition sections to NAME\n"
      "  --trace-out FILE     write a Chrome trace_event JSON timeline\n"
      "                       (worker runs, adaptive batches, hv partition\n"
      "                       frames) for chrome://tracing / Perfetto\n"
      "  --progress           live progress line on stderr\n"
      "  --store DIR          persist/resume campaigns via the on-disk\n"
      "                       campaign store in DIR (interrupted campaigns\n"
      "                       resume bit-identically; finished ones render\n"
      "                       without re-simulating)\n"
      "\n"
      "options (sweep):\n"
      "  --store DIR          required: the campaign store backing the sweep\n"
      "  --seed S             repeatable: seed axis of the scenario × seed\n"
      "                       grid (default: each scenario's default seeds)\n"
      "  --manifest FILE      sweep manifest path\n"
      "                       (default <store>/sweep-manifest.json)\n"
      "  --baseline FILE      gate against a stored sweep/report document;\n"
      "                       drift beyond --tolerance exits 1\n"
      "  --tolerance F        baseline gate tolerance (default 0: bit-exact)\n"
      "\n"
      "options (diff):\n"
      "  --against SCENARIO   run SCENARIO fresh as the baseline (mirrors\n"
      "                       the candidate's runs/seed/frames/vm-core)\n"
      "                       instead of reading a baseline file\n"
      "  --tolerance F        max relative metric shift treated as equal\n"
      "                       (default 0: bit-exact, digests included)\n"
      "  --format F           text|json (default text; exit codes identical)\n"
      "\n"
      "options (lint):\n"
      "  --scenario/--all, --runs, --workers, --seed, --vm-core as above\n"
      "  --format F           text|json (default text)\n"
      "                       (--runs sizes the dynamic confirmation\n"
      "                       campaign only; the static pass needs none)\n"
      "\n"
      "examples:\n"
      "  proxima list\n"
      "  proxima run --scenario control/operation-dsr --runs 500 --workers 8\n"
      "  proxima run --scenario control/analysis-dsr --adaptive --seed 42 \\\n"
      "              --format json\n"
      "  proxima run --scenario hv/image+control --runs 200 --format json\n"
      "  proxima run --scenario control/operation-dsr --runs 200 \\\n"
      "              --trace-out trace.json --progress\n"
      "  proxima profile --scenario control/operation-dsr --runs 200\n"
      "  proxima report --all --runs 300 --format csv\n"
      "  proxima run --scenario control/operation-dsr --runs 500 \\\n"
      "              --store .proxima-store\n"
      "  proxima sweep --store .proxima-store --runs 200 --seed 1 --seed 2 \\\n"
      "              --manifest sweep.json --format json > sweep-report.json\n"
      "  proxima sweep --store .proxima-store --runs 200 \\\n"
      "              --baseline sweep-report.json --tolerance 0.001\n"
      "  proxima diff golden.json candidate.json --tolerance 0.001\n"
      "  proxima diff golden.json candidate.json --format json\n"
      "  proxima diff candidate.json --against control/operation-dsr\n"
      "  proxima lint --scenario leak/beacon-dsr --runs 40\n"
      "  proxima lint --scenario leak/hardened-dsr --runs 40 --format json\n";
}

} // namespace proxima::cli
