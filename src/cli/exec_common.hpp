// Internal CLI plumbing shared by commands.cpp and sweep.cpp: scenario
// selection, campaign execution (bare engine or store-backed), and the
// JSON sections every campaign document is assembled from.
//
// `proxima::cli::detail` is NOT part of the library surface — the unit of
// reuse is the rendered JSON document, not these helpers.  They live in a
// header only so `proxima sweep` can emit scenario sections that are
// bit-compatible with `proxima report` (the sweep --baseline gate diffs
// the two shapes against each other).
#pragma once

#include "cli/json_writer.hpp"
#include "cli/options.hpp"
#include "exec/engine.hpp"
#include "mbpta/mbpta.hpp"
#include "obs/timeline.hpp"
#include "store/store.hpp"

#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace proxima::cli::detail {

/// One executed scenario: the campaign, its wall time, (adaptive) the
/// convergence trace, and (store-backed) the cell statistics.
struct Execution {
  std::string name;
  casestudy::CampaignConfig config;
  casestudy::CampaignResult result;
  double seconds = 0.0;
  std::optional<exec::AdaptiveCampaignResult> adaptive; // trace only
  std::uint64_t budget = 0;     // adaptive: --runs
  std::uint64_t batch_runs = 0; // adaptive growth quantum
  unsigned workers = 0;         // resolved count the engine actually uses
  /// Set when the campaign ran through `--store`: how many runs were
  /// served from the cell vs freshly simulated, and where the cell lives.
  std::optional<store::StoreStats> store;

  std::uint64_t guest_instructions() const {
    std::uint64_t total = 0;
    for (const casestudy::RunSample& sample : result.samples) {
      total += sample.counters.instructions;
    }
    return total;
  }
  double minstr_per_second() const {
    return seconds <= 0.0
               ? 0.0
               : static_cast<double>(guest_instructions()) / seconds / 1e6;
  }
};

/// Expand `--all` / validate `--scenario` names against the registry.
/// Throws std::out_of_range (listing the catalogue) on an unknown name.
std::vector<std::string> selected_scenarios(const CampaignOptions& options);

/// The scenario's config with the CLI knobs (seed, vm core, frames)
/// applied.
casestudy::CampaignConfig scenario_config(const std::string& name,
                                          const CampaignOptions& options);

/// Adaptive growth quantum: `--batch`, or max(50, runs/10).
std::uint64_t effective_batch(const CampaignOptions& options);

/// The convergence-loop configuration `--adaptive` campaigns run under.
exec::ConvergenceOptions convergence_options(const CampaignOptions& options);

/// Execute one scenario — through the campaign store when
/// `options.store_dir` is set (resume + persist), bare engine otherwise.
Execution execute_scenario(const std::string& name,
                           const CampaignOptions& options,
                           obs::Timeline* timeline, std::ostream& err);

/// Execute every selected scenario, then write the shared `--trace-out`
/// timeline.  A campaign fault on a later scenario propagates BEFORE any
/// output, so machine consumers never see a truncated document.
std::vector<Execution> execute_selected(const CampaignOptions& options,
                                        std::ostream& err);

/// Serialise a timeline to `--trace-out FILE`; failures surface as a
/// campaign fault (exit 3).
void write_trace_file(const obs::Timeline& timeline, const std::string& path);

const char* vm_core_name(vm::VmCore core);

/// A `--partition` name matching no partition of any selected scenario is
/// a usage error, raised BEFORE any output.
void validate_partition_filter(const std::vector<const Execution*>& executions,
                               const CampaignOptions& options);

/// MBPTA analysis of one execution, with the same fit configuration the
/// campaign ran under (adaptive campaigns reuse the controller's tail-fit
/// config — the reported fit is the one whose stability was certified).
struct Analysed {
  std::optional<mbpta::MbptaAnalysis> analysis;
  std::string error; // set when `analysis` is absent (campaign too short)
};
Analysed analyse_execution(const Execution& execution,
                           const CampaignOptions& options);

// JSON sections of a scenario object inside a campaign document.  The
// sweep document reuses these verbatim so `proxima diff` / the baseline
// gate can compare sweep output against report output scenario-by-
// scenario.
void write_execution_header_json(JsonWriter& json, const Execution& execution,
                                 const CampaignOptions& options);
void write_adaptive_json(JsonWriter& json, const Execution& execution);
void write_times_json(JsonWriter& json, const Execution& execution);
void write_partitions_json(JsonWriter& json, const Execution& execution,
                           const CampaignOptions& options);
void write_throughput_json(JsonWriter& json, const Execution& execution);
void write_metrics_json(JsonWriter& json, const Execution& execution);
/// The `"analysis"` section (or null + "analysis_error").
void write_analysis_json(JsonWriter& json, const Analysed& analysed,
                         int decades);

} // namespace proxima::cli::detail
