// The `proxima` command-line driver: list | run | report | diff over the
// scenario registry, on top of the parallel campaign engine (fixed or
// adaptive convergence-driven campaigns) and the trace/mbpta reporting
// stack.
//
// The commands write to caller-supplied streams and return process exit
// codes, so the CLI smoke tests drive them in-process; tools/proxima_main
// is a two-line shim around `run_cli`.
//
// Exit codes: 0 success, 1 a scenario's MBPTA analysis could not run
// (report) or a diff found drift, 2 usage / unknown scenario, 3 campaign
// fault.
#pragma once

#include "cli/json_reader.hpp"
#include "cli/options.hpp"

#include <ostream>

namespace proxima::cli {

/// Parse argv and dispatch.  Never throws: errors are rendered to `err`.
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

/// Individual commands (parsed options already validated).  May throw
/// (unknown scenario: std::out_of_range; campaign fault: runtime_error) —
/// `run_cli` turns those into exit codes.  `err` carries the optional
/// `--progress` live line (kept off `out` so piped json/csv stays clean).
int cmd_list(const CampaignOptions& options, std::ostream& out);
int cmd_run(const CampaignOptions& options, std::ostream& out,
            std::ostream& err);
int cmd_report(const CampaignOptions& options, std::ostream& out,
               std::ostream& err);
/// Render the merged metrics registry of the selected scenarios.
int cmd_profile(const CampaignOptions& options, std::ostream& out,
                std::ostream& err);
/// Compare two saved JSON reports (diff.cpp); 0 no drift, 1 drift.
int cmd_diff(const DiffOptions& options, std::ostream& out,
             std::ostream& err);
/// Run the scenario × seed grid through the campaign store (sweep.cpp);
/// 0 success, 1 baseline drift, 3 campaign fault.
int cmd_sweep(const CampaignOptions& options, const SweepOptions& sweep,
              std::ostream& out, std::ostream& err);
/// Address-leak analysis (lint.cpp): static taint pass over each selected
/// scenario's guest program plus a dynamic-taint confirmation campaign.
/// 0 every scenario clean, 1 any confirmed leak, 2 usage.
int cmd_lint(const CampaignOptions& options, std::ostream& out,
             std::ostream& err);

/// Load and shape-check a saved run/report/sweep JSON document (diff.cpp).
/// Throws UsageError on unreadable/unparseable/wrong-kind files.
JsonValue load_report_document(const std::string& path);
/// Compare two loaded documents with the diff engine, print drift lines +
/// a summary to `out`, and return the drift count (diff.cpp).  Shared by
/// `cmd_diff` and the `sweep --baseline` gate.
int diff_drift_count(const JsonValue& baseline, const JsonValue& candidate,
                     double tolerance, std::ostream& out);

} // namespace proxima::cli
