// The `proxima` command-line driver: list | run | report | diff over the
// scenario registry, on top of the parallel campaign engine (fixed or
// adaptive convergence-driven campaigns) and the trace/mbpta reporting
// stack.
//
// The commands write to caller-supplied streams and return process exit
// codes, so the CLI smoke tests drive them in-process; tools/proxima_main
// is a two-line shim around `run_cli`.
//
// Exit codes: 0 success, 1 a scenario's MBPTA analysis could not run
// (report) or a diff found drift, 2 usage / unknown scenario, 3 campaign
// fault.
#pragma once

#include "cli/options.hpp"

#include <ostream>

namespace proxima::cli {

/// Parse argv and dispatch.  Never throws: errors are rendered to `err`.
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

/// Individual commands (parsed options already validated).  May throw
/// (unknown scenario: std::out_of_range; campaign fault: runtime_error) —
/// `run_cli` turns those into exit codes.  `err` carries the optional
/// `--progress` live line (kept off `out` so piped json/csv stays clean).
int cmd_list(const CampaignOptions& options, std::ostream& out);
int cmd_run(const CampaignOptions& options, std::ostream& out,
            std::ostream& err);
int cmd_report(const CampaignOptions& options, std::ostream& out,
               std::ostream& err);
/// Render the merged metrics registry of the selected scenarios.
int cmd_profile(const CampaignOptions& options, std::ostream& out,
                std::ostream& err);
/// Compare two saved JSON reports (diff.cpp); 0 no drift, 1 drift.
int cmd_diff(const DiffOptions& options, std::ostream& out);

} // namespace proxima::cli
