// Implementation of `proxima lint`: the address-leak gate for DSR secrecy
// (ISSUE 8).
//
// For every selected scenario the command checks the same property two
// independent ways and reports whether they agree:
//
//   static  — analysis::analyse_address_leaks over the guest program AS
//             THE CAMPAIGN RUNS IT (measured target build + the DSR pass
//             for kDsr arms): a forward taint dataflow proving "some store
//             into an observable output may carry a layout-derived value";
//   dynamic — the scenario's own campaign re-run with
//             `CampaignConfig::taint` (vm/taint.hpp): per-register /
//             per-word shadow bits maintained while the real runs execute,
//             counting actual tainted stores into the declared sink
//             objects via the `leak.*` metrics family.
//
// Exit codes: 0 every scenario clean, 1 any confirmed leak (either
// detector), 2 usage / unknown scenario, 3 campaign fault — matching the
// rest of the CLI.
#include "analysis/static_taint.hpp"
#include "casestudy/measured_target.hpp"
#include "cli.hpp"
#include "cli/exec_common.hpp"
#include "cli/json_writer.hpp"
#include "core/dsr_pass.hpp"
#include "exec/engine.hpp"
#include "obs/metrics.hpp"

#include <string>
#include <vector>

namespace proxima::cli {

namespace {

const char* randomisation_name(casestudy::Randomisation randomisation) {
  switch (randomisation) {
  case casestudy::Randomisation::kDsr:
    return "dsr";
  case casestudy::Randomisation::kDsrOnDemand:
    return "dsr-ondemand";
  case casestudy::Randomisation::kStatic:
    return "static";
  case casestudy::Randomisation::kHardware:
    return "hwrand";
  case casestudy::Randomisation::kNone:
    break;
  }
  return "cots";
}

/// Everything lint derives for one scenario.
struct LintResult {
  std::string name;
  std::string target;
  std::string randomisation;
  analysis::TaintReport static_report;
  std::uint64_t runs = 0;
  std::uint64_t sink_stores = 0;
  std::uint64_t tainted_stores = 0;
  std::uint64_t source_loads = 0;
  std::uint64_t pc_taints = 0;
  std::uint64_t sink_bits_max = 0;

  bool static_leak() const { return !static_report.clean(); }
  bool dynamic_leak() const { return sink_stores > 0; }
  bool leak() const { return static_leak() || dynamic_leak(); }
  bool agree() const { return static_leak() == dynamic_leak(); }
};

std::uint64_t counter_or_zero(const obs::MetricsSnapshot& metrics,
                              const std::string& name) {
  const auto it = metrics.counters.find(name);
  return it == metrics.counters.end() ? 0 : it->second;
}

LintResult lint_scenario(const std::string& name,
                         const CampaignOptions& options, std::ostream& err) {
  LintResult result;
  result.name = name;
  casestudy::CampaignConfig config = detail::scenario_config(name, options);
  result.target = casestudy::measured_target_name(config.measured);
  result.randomisation = randomisation_name(config.randomisation);

  // Static pass: analyse the program the campaign actually executes —
  // the measured target's build plus the DSR compiler pass for DSR arms
  // (the pass inserts the stubs/tables whose flows the lattice models).
  const std::unique_ptr<casestudy::MeasuredTarget> target =
      casestudy::make_measured_target(config);
  isa::Program program = target->build_program();
  if (casestudy::uses_dsr(config.randomisation)) {
    dsr::apply_pass(program, config.pass_options);
  }
  result.static_report =
      analysis::analyse_address_leaks(program, target->observable_symbols());

  // Dynamic confirmation: the scenario's own campaign with the taint
  // shadow machinery on.  Purely observational — times and digests match
  // a taint-off run — so the verdict describes exactly the executions the
  // scenario measures.
  config.taint = true;
  config.collect_metrics = true;
  exec::EngineOptions engine_options;
  engine_options.workers = options.workers;
  if (options.progress) {
    engine_options.progress = [&err, name](std::uint64_t completed,
                                           std::uint64_t total) {
      err << '\r' << name << ": " << completed << '/' << total << " runs"
          << std::flush;
    };
  }
  const exec::CampaignEngine engine(engine_options);
  const casestudy::CampaignResult campaign = engine.run(config);
  if (options.progress) {
    err << '\n';
  }
  result.runs = campaign.times.size();
  result.sink_stores = counter_or_zero(campaign.metrics, "leak.sink_stores");
  result.tainted_stores =
      counter_or_zero(campaign.metrics, "leak.tainted_stores");
  result.source_loads = counter_or_zero(campaign.metrics, "leak.source_loads");
  result.pc_taints = counter_or_zero(campaign.metrics, "leak.pc_taints");
  const auto bits = campaign.metrics.histograms.find("leak.sink_bits");
  if (bits != campaign.metrics.histograms.end() && bits->second.count > 0) {
    result.sink_bits_max = bits->second.max;
  }
  return result;
}

void render_text(const LintResult& result, std::ostream& out) {
  out << "lint " << result.name << " (measured " << result.target << ", "
      << result.randomisation << "): "
      << (result.leak() ? "LEAK" : "clean") << '\n';
  out << "  static: " << result.static_report.findings.size()
      << " finding(s) over " << result.static_report.functions_analysed
      << " function(s), " << result.static_report.instructions_analysed
      << " instruction(s)\n";
  for (const analysis::LeakFinding& finding : result.static_report.findings) {
    out << "    " << analysis::describe(finding) << '\n';
    for (const std::string& step : finding.chain) {
      out << "      " << step << '\n';
    }
  }
  out << "  dynamic: runs=" << result.runs
      << " sink_stores=" << result.sink_stores
      << " tainted_stores=" << result.tainted_stores
      << " source_loads=" << result.source_loads
      << " pc_taints=" << result.pc_taints
      << " sink_bits_max=" << result.sink_bits_max << '\n';
  out << "  static/dynamic agree: " << (result.agree() ? "yes" : "NO")
      << '\n';
}

void render_json(const std::vector<LintResult>& results, std::ostream& out) {
  JsonWriter json(out);
  json.begin_object();
  json.key("kind").value("lint");
  json.key("scenarios").begin_array();
  for (const LintResult& result : results) {
    json.begin_object();
    json.key("scenario").value(result.name);
    json.key("target").value(result.target);
    json.key("randomisation").value(result.randomisation);
    json.key("leak").value(result.leak());
    json.key("agree").value(result.agree());
    json.key("static").begin_object();
    json.key("functions").value(
        std::uint64_t{result.static_report.functions_analysed});
    json.key("instructions").value(
        std::uint64_t{result.static_report.instructions_analysed});
    json.key("findings").begin_array();
    for (const analysis::LeakFinding& finding :
         result.static_report.findings) {
      json.begin_object();
      json.key("function").value(finding.function);
      json.key("instruction_index")
          .value(std::uint64_t{finding.instruction_index});
      json.key("sink_symbol").value(finding.sink_symbol);
      json.key("sink_offset").value(std::int64_t{finding.sink_offset});
      json.key("source_kind")
          .value(analysis::taint_source_kind_name(finding.source.kind));
      json.key("source").value(finding.source.description);
      json.key("chain").begin_array();
      for (const std::string& step : finding.chain) {
        json.value(step);
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.end_object();
    json.key("dynamic").begin_object();
    json.key("runs").value(result.runs);
    json.key("sink_stores").value(result.sink_stores);
    json.key("tainted_stores").value(result.tainted_stores);
    json.key("source_loads").value(result.source_loads);
    json.key("pc_taints").value(result.pc_taints);
    json.key("sink_bits_max").value(result.sink_bits_max);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

} // namespace

int cmd_lint(const CampaignOptions& options, std::ostream& out,
             std::ostream& err) {
  const std::vector<std::string> names = detail::selected_scenarios(options);
  std::vector<LintResult> results;
  results.reserve(names.size());
  for (const std::string& name : names) {
    results.push_back(lint_scenario(name, options, err));
  }
  bool any_leak = false;
  if (options.format == OutputFormat::kJson) {
    render_json(results, out);
  }
  for (const LintResult& result : results) {
    if (options.format == OutputFormat::kText) {
      render_text(result, out);
    }
    any_leak = any_leak || result.leak();
  }
  return any_leak ? 1 : 0;
}

} // namespace proxima::cli
