#include "instruction.hpp"

#include <sstream>

namespace proxima::isa {

namespace {
constexpr std::uint32_t kFieldRd = 19;
constexpr std::uint32_t kFieldRs1 = 14;
constexpr std::uint32_t kFieldRs2 = 9;
constexpr std::uint32_t kMask5 = 0x1f;
constexpr std::uint32_t kMask14 = 0x3fff;
constexpr std::uint32_t kMask19 = 0x7ffff;
constexpr std::uint32_t kMask24 = 0xffffff;

std::int32_t sign_extend(std::uint32_t value, unsigned bits) {
  const std::uint32_t sign = 1U << (bits - 1);
  return static_cast<std::int32_t>((value ^ sign)) -
         static_cast<std::int32_t>(sign);
}

[[noreturn]] void field_error(const Instruction& instr, const char* what) {
  std::ostringstream oss;
  oss << opcode_info(instr.op).name << ": " << what;
  throw DecodeError(oss.str());
}
} // namespace

std::uint32_t encode(const Instruction& instr) {
  const auto raw_op = static_cast<std::uint32_t>(instr.op);
  if (!is_valid_opcode(static_cast<std::uint8_t>(raw_op))) {
    throw DecodeError("encode: invalid opcode");
  }
  if (instr.rd >= kRegisterCount || instr.rs1 >= kRegisterCount ||
      instr.rs2 >= kRegisterCount) {
    field_error(instr, "register index out of range");
  }
  std::uint32_t word = raw_op << 24;
  switch (opcode_info(instr.op).format) {
  case Format::kR:
    word |= static_cast<std::uint32_t>(instr.rd) << kFieldRd;
    word |= static_cast<std::uint32_t>(instr.rs1) << kFieldRs1;
    word |= static_cast<std::uint32_t>(instr.rs2) << kFieldRs2;
    break;
  case Format::kI:
    if (instr.imm < kSimm14Min || instr.imm > kSimm14Max) {
      field_error(instr, "simm14 out of range");
    }
    word |= static_cast<std::uint32_t>(instr.rd) << kFieldRd;
    word |= static_cast<std::uint32_t>(instr.rs1) << kFieldRs1;
    word |= static_cast<std::uint32_t>(instr.imm) & kMask14;
    break;
  case Format::kB:
    if (instr.imm < kDisp24Min || instr.imm > kDisp24Max) {
      field_error(instr, "disp24 out of range");
    }
    word |= static_cast<std::uint32_t>(instr.imm) & kMask24;
    break;
  case Format::kH:
    if (static_cast<std::uint32_t>(instr.imm) > kImm19Max) {
      field_error(instr, "imm19 out of range");
    }
    word |= static_cast<std::uint32_t>(instr.rd) << kFieldRd;
    word |= static_cast<std::uint32_t>(instr.imm) & kMask19;
    break;
  }
  return word;
}

Instruction decode(std::uint32_t word) {
  const std::uint8_t raw_op = static_cast<std::uint8_t>(word >> 24);
  if (!is_valid_opcode(raw_op)) {
    std::ostringstream oss;
    oss << "decode: invalid opcode byte 0x" << std::hex
        << static_cast<unsigned>(raw_op);
    throw DecodeError(oss.str());
  }
  Instruction instr;
  instr.op = static_cast<Opcode>(raw_op);
  switch (opcode_info(instr.op).format) {
  case Format::kR:
    instr.rd = static_cast<std::uint8_t>((word >> kFieldRd) & kMask5);
    instr.rs1 = static_cast<std::uint8_t>((word >> kFieldRs1) & kMask5);
    instr.rs2 = static_cast<std::uint8_t>((word >> kFieldRs2) & kMask5);
    break;
  case Format::kI:
    instr.rd = static_cast<std::uint8_t>((word >> kFieldRd) & kMask5);
    instr.rs1 = static_cast<std::uint8_t>((word >> kFieldRs1) & kMask5);
    instr.imm = sign_extend(word & kMask14, 14);
    break;
  case Format::kB:
    instr.imm = sign_extend(word & kMask24, 24);
    break;
  case Format::kH:
    instr.rd = static_cast<std::uint8_t>((word >> kFieldRd) & kMask5);
    instr.imm = static_cast<std::int32_t>(word & kMask19);
    break;
  }
  return instr;
}

std::string disassemble(const Instruction& instr) {
  const OpcodeInfo& info = opcode_info(instr.op);
  std::ostringstream oss;
  oss << info.name;
  const bool fp = uses_fp_registers(instr.op);
  auto rn = [fp](std::uint8_t reg) -> std::string {
    if (fp) {
      return "%f" + std::to_string(reg);
    }
    return std::string(register_name(reg));
  };
  switch (info.format) {
  case Format::kR:
    if (instr.op == Opcode::kRdtick) {
      oss << ' ' << rn(instr.rd);
    } else if (instr.op == Opcode::kFitod || instr.op == Opcode::kFdtoi) {
      // Mixed register files: fitod reads an integer register, fdtoi
      // writes one.
      if (instr.op == Opcode::kFitod) {
        oss << ' ' << register_name(instr.rs1) << ", %f"
            << static_cast<unsigned>(instr.rd);
      } else {
        oss << " %f" << static_cast<unsigned>(instr.rs1) << ", "
            << register_name(instr.rd);
      }
    } else {
      oss << ' ' << rn(instr.rs1) << ", " << rn(instr.rs2) << ", "
          << rn(instr.rd);
    }
    break;
  case Format::kI:
    if (instr.op == Opcode::kLd || instr.op == Opcode::kLdb ||
        instr.op == Opcode::kLdd || instr.op == Opcode::kLdf) {
      oss << " [" << register_name(instr.rs1) << (instr.imm >= 0 ? "+" : "")
          << instr.imm << "], " << rn(instr.rd);
    } else if (instr.op == Opcode::kSt || instr.op == Opcode::kStb ||
               instr.op == Opcode::kStd || instr.op == Opcode::kStf) {
      oss << ' ' << rn(instr.rd) << ", [" << register_name(instr.rs1)
          << (instr.imm >= 0 ? "+" : "") << instr.imm << ']';
    } else if (instr.op == Opcode::kFlush) {
      oss << " [" << register_name(instr.rs1) << (instr.imm >= 0 ? "+" : "")
          << instr.imm << ']';
    } else {
      oss << ' ' << rn(instr.rs1) << ", " << instr.imm << ", " << rn(instr.rd);
    }
    break;
  case Format::kB:
    if (instr.op == Opcode::kNop || instr.op == Opcode::kHalt) {
      break;
    }
    oss << ' ' << instr.imm;
    break;
  case Format::kH:
    oss << ' ' << rn(instr.rd) << ", 0x" << std::hex
        << (static_cast<std::uint32_t>(instr.imm) << 13);
    break;
  }
  return oss.str();
}

} // namespace proxima::isa
