#include "assembler.hpp"

#include "builder.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <memory>
#include <sstream>
#include <vector>

namespace proxima::isa {

namespace {

// ---------------------------------------------------------------------------
// Lexing helpers.
// ---------------------------------------------------------------------------

std::string strip(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

/// Split an operand list on commas that are outside brackets.
std::vector<std::string> split_operands(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  for (const char c : text) {
    if (c == '[' || c == '(') {
      ++depth;
    } else if (c == ']' || c == ')') {
      --depth;
    }
    if (c == ',' && depth == 0) {
      out.push_back(strip(current));
      current.clear();
    } else {
      current += c;
    }
  }
  const std::string tail = strip(current);
  if (!tail.empty()) {
    out.push_back(tail);
  }
  return out;
}

std::optional<std::uint8_t> parse_register(const std::string& token) {
  static const std::map<std::string, std::uint8_t> kAliases = {
      {"%sp", kSp}, {"%fp", kFp}};
  if (const auto it = kAliases.find(token); it != kAliases.end()) {
    return it->second;
  }
  if (token.size() < 3 || token[0] != '%') {
    return std::nullopt;
  }
  const char bank = token[1];
  const std::string index_text = token.substr(2);
  if (index_text.empty() ||
      !std::all_of(index_text.begin(), index_text.end(), [](char c) {
        return std::isdigit(static_cast<unsigned char>(c));
      })) {
    return std::nullopt;
  }
  const int index = std::stoi(index_text);
  if (index < 0 || index > 7) {
    if (bank == 'f' && index <= 15) {
      return static_cast<std::uint8_t>(index); // FP register
    }
    return std::nullopt;
  }
  switch (bank) {
  case 'g':
    return static_cast<std::uint8_t>(index);
  case 'o':
    return static_cast<std::uint8_t>(8 + index);
  case 'l':
    return static_cast<std::uint8_t>(16 + index);
  case 'i':
    return static_cast<std::uint8_t>(24 + index);
  case 'f':
    return static_cast<std::uint8_t>(index);
  default:
    return std::nullopt;
  }
}

std::optional<std::int64_t> parse_integer(const std::string& token) {
  if (token.empty()) {
    return std::nullopt;
  }
  std::size_t pos = 0;
  try {
    const std::int64_t value = std::stoll(token, &pos, 0);
    if (pos != token.size()) {
      return std::nullopt;
    }
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// "%hi(symbol)" / "%lo(symbol)" reference.
struct HiLoRef {
  bool is_hi = false;
  std::string symbol;
};

std::optional<HiLoRef> parse_hilo(const std::string& token) {
  const bool hi = token.rfind("%hi(", 0) == 0;
  const bool lo = token.rfind("%lo(", 0) == 0;
  if ((!hi && !lo) || token.back() != ')') {
    return std::nullopt;
  }
  return HiLoRef{hi, strip(token.substr(4, token.size() - 5))};
}

/// "[%reg+imm]" / "[%reg-imm]" / "[%reg]" memory operand.
struct MemOperand {
  std::uint8_t base = 0;
  std::int32_t offset = 0;
};

// ---------------------------------------------------------------------------
// The assembler proper.
// ---------------------------------------------------------------------------

class Assembler {
public:
  explicit Assembler(std::string_view source) : source_(source) {}

  Program run() {
    std::istringstream stream{std::string(source_)};
    std::string raw_line;
    while (std::getline(stream, raw_line)) {
      ++line_;
      std::string line = raw_line;
      if (const std::size_t comment = line.find('!');
          comment != std::string::npos) {
        line.resize(comment);
      }
      line = strip(line);
      if (line.empty()) {
        continue;
      }
      if (line[0] == '.') {
        directive(line);
        continue;
      }
      if (line.back() == ':') {
        define_label(strip(line.substr(0, line.size() - 1)));
        continue;
      }
      instruction(line);
    }
    finish_function();
    if (!entry_.empty()) {
      program_.entry = entry_;
    }
    return std::move(program_);
  }

private:
  [[noreturn]] void fail(const std::string& what) const {
    throw AsmError(line_, what);
  }

  void require(bool condition, const std::string& what) const {
    if (!condition) {
      fail(what);
    }
  }

  std::uint8_t reg(const std::string& token) const {
    const auto value = parse_register(token);
    if (!value) {
      fail("bad register '" + token + "'");
    }
    return *value;
  }

  std::int32_t imm(const std::string& token) const {
    const auto value = parse_integer(token);
    if (!value) {
      fail("bad immediate '" + token + "'");
    }
    return static_cast<std::int32_t>(*value);
  }

  MemOperand mem(const std::string& token) const {
    if (token.size() < 3 || token.front() != '[' || token.back() != ']') {
      fail("bad memory operand '" + token + "'");
    }
    const std::string inner = strip(token.substr(1, token.size() - 2));
    const std::size_t sign = inner.find_first_of("+-", 1);
    MemOperand operand;
    if (sign == std::string::npos) {
      operand.base = reg(strip(inner));
      return operand;
    }
    operand.base = reg(strip(inner.substr(0, sign)));
    operand.offset = imm(strip(inner.substr(sign)));
    return operand;
  }

  void directive(const std::string& line) {
    std::istringstream iss(line);
    std::string name;
    iss >> name;
    std::string rest;
    std::getline(iss, rest);
    const std::vector<std::string> args = split_operands(strip(rest));
    if (name == ".global") {
      require(args.size() == 1, ".global needs one symbol");
      entry_ = args[0];
    } else if (name == ".data") {
      require(args.size() >= 2 && args.size() <= 3,
              ".data needs name, size [, align]");
      DataObject object;
      object.name = args[0];
      object.size = static_cast<std::uint32_t>(imm(args[1]));
      object.align = args.size() == 3
                         ? static_cast<std::uint32_t>(imm(args[2]))
                         : 8;
      program_.data.push_back(std::move(object));
    } else if (name == ".word") {
      require(!program_.data.empty(), ".word outside a .data object");
      DataObject& object = program_.data.back();
      for (const std::string& arg : args) {
        const std::uint32_t value = static_cast<std::uint32_t>(imm(arg));
        for (int shift = 24; shift >= 0; shift -= 8) {
          object.init.push_back(static_cast<std::uint8_t>(value >> shift));
        }
      }
      require(object.init.size() <= object.size,
              ".word contents exceed the object size");
    } else {
      fail("unknown directive '" + name + "'");
    }
  }

  void define_label(const std::string& name) {
    require(!name.empty(), "empty label");
    if (builder_ == nullptr || at_function_boundary_) {
      // A label at a function boundary opens a new function.
      finish_function();
      builder_ = std::make_unique<FunctionBuilder>(name);
      at_function_boundary_ = false;
      return;
    }
    builder_->label(name);
  }

  void finish_function() {
    if (builder_ != nullptr) {
      Function function = builder_->build();
      for (const PendingFixup& pending : pending_fixups_) {
        function.fixups.push_back(
            Fixup{pending.index, pending.kind, pending.symbol, 0});
      }
      pending_fixups_.clear();
      program_.functions.push_back(std::move(function));
      builder_ = nullptr;
    }
  }

  void instruction(const std::string& line) {
    require(builder_ != nullptr, "instruction outside a function");
    std::istringstream iss(line);
    std::string mnemonic;
    iss >> mnemonic;
    std::string rest;
    std::getline(iss, rest);
    const std::vector<std::string> ops = split_operands(strip(rest));
    emit(mnemonic, ops);
  }

  /// rd-rs1-operand2 style ALU instruction with reg/imm variants.
  void alu(Opcode reg_op, Opcode imm_op, const std::vector<std::string>& ops) {
    require(ops.size() == 3, "expected 'rs1, operand2, rd'");
    const std::uint8_t rs1 = reg(ops[0]);
    const std::uint8_t rd = reg(ops[2]);
    if (const auto rs2 = parse_register(ops[1])) {
      builder_->op3(reg_op, rd, rs1, *rs2);
    } else {
      builder_->opi(imm_op, rd, rs1, imm(ops[1]));
    }
  }

  void emit(const std::string& m, const std::vector<std::string>& ops) {
    FunctionBuilder& fb = *builder_;
    if (m == "add") {
      alu(Opcode::kAdd, Opcode::kAddi, ops);
    } else if (m == "sub") {
      alu(Opcode::kSub, Opcode::kSubi, ops);
    } else if (m == "and") {
      alu(Opcode::kAnd, Opcode::kAndi, ops);
    } else if (m == "or") {
      // %lo(sym) in the immediate slot becomes an ORLO with a fixup.
      if (ops.size() == 3) {
        if (const auto hilo = parse_hilo(ops[1]); hilo && !hilo->is_hi) {
          // Reuse load_address's fixup form: emit orlo with a kLo13 fixup.
          fb.emit(make_i(Opcode::kOrlo, reg(ops[2]), reg(ops[0]), 0));
          fixup_last(FixupKind::kLo13, hilo->symbol);
          return;
        }
      }
      alu(Opcode::kOr, Opcode::kOri, ops);
    } else if (m == "xor") {
      alu(Opcode::kXor, Opcode::kXori, ops);
    } else if (m == "sll") {
      alu(Opcode::kSll, Opcode::kSlli, ops);
    } else if (m == "srl") {
      alu(Opcode::kSrl, Opcode::kSrli, ops);
    } else if (m == "sra") {
      alu(Opcode::kSra, Opcode::kSrai, ops);
    } else if (m == "smul" || m == "mul") {
      alu(Opcode::kMul, Opcode::kMuli, ops);
    } else if (m == "sdiv" || m == "div") {
      alu(Opcode::kDiv, Opcode::kDivi, ops);
    } else if (m == "addcc") {
      alu(Opcode::kAddcc, Opcode::kAddcci, ops);
    } else if (m == "subcc") {
      alu(Opcode::kSubcc, Opcode::kSubcci, ops);
    } else if (m == "cmp") {
      require(ops.size() == 2, "cmp rs1, operand2");
      if (const auto rs2 = parse_register(ops[1])) {
        fb.op3(Opcode::kSubcc, kG0, reg(ops[0]), *rs2);
      } else {
        fb.opi(Opcode::kSubcci, kG0, reg(ops[0]), imm(ops[1]));
      }
    } else if (m == "mov") {
      require(ops.size() == 2, "mov src, rd");
      if (const auto rs = parse_register(ops[0])) {
        fb.mov(reg(ops[1]), *rs);
      } else {
        fb.li(reg(ops[1]), imm(ops[0]));
      }
    } else if (m == "set") {
      require(ops.size() == 2, "set value|symbol, rd");
      if (const auto value = parse_integer(ops[0])) {
        fb.li(reg(ops[1]), static_cast<std::int32_t>(*value));
      } else {
        fb.load_address(reg(ops[1]), ops[0]);
      }
    } else if (m == "sethi") {
      require(ops.size() == 2, "sethi %hi(sym)|imm, rd");
      if (const auto hilo = parse_hilo(ops[0]); hilo && hilo->is_hi) {
        fb.emit(make_sethi(reg(ops[1]), 0));
        fixup_last(FixupKind::kHi19, hilo->symbol);
      } else {
        fb.emit(make_sethi(reg(ops[1]),
                           static_cast<std::uint32_t>(imm(ops[0]))));
      }
    } else if (m == "ld" || m == "ldub" || m == "ldd" || m == "lddf") {
      require(ops.size() == 2, m + " [mem], rd");
      const MemOperand operand = mem(ops[0]);
      const Opcode op = m == "ld"     ? Opcode::kLd
                        : m == "ldub" ? Opcode::kLdb
                        : m == "ldd"  ? Opcode::kLdd
                                      : Opcode::kLdf;
      fb.opi(op, reg(ops[1]), operand.base, operand.offset);
    } else if (m == "st" || m == "stb" || m == "std" || m == "stdf") {
      require(ops.size() == 2, m + " rs, [mem]");
      const MemOperand operand = mem(ops[1]);
      const Opcode op = m == "st"    ? Opcode::kSt
                        : m == "stb" ? Opcode::kStb
                        : m == "std" ? Opcode::kStd
                                     : Opcode::kStf;
      fb.opi(op, reg(ops[0]), operand.base, operand.offset);
    } else if (m == "call") {
      require(ops.size() == 1, "call target");
      fb.call(ops[0]);
    } else if (m == "save") {
      require(ops.size() == 3, "save rs1, operand2, rd");
      const std::int32_t frame = -imm(ops[1]);
      require(parse_register(ops[0]) == kSp && reg(ops[2]) == kSp,
              "only 'save %sp, -N, %sp' prologues are supported");
      fb.prologue(static_cast<std::uint32_t>(frame));
    } else if (m == "restore") {
      fb.op3(Opcode::kRestore, kG0, kG0, kG0);
    } else if (m == "ret") {
      fb.emit(make_i(Opcode::kJmpl, kG0, kO7, 4));
      at_function_boundary_ = true;
    } else if (m == "retl") {
      fb.ret_leaf();
      at_function_boundary_ = true;
    } else if (m == "jmpl") {
      require(ops.size() == 2, "jmpl [mem], rd");
      const MemOperand operand = mem(ops[0]);
      fb.opi(Opcode::kJmpl, reg(ops[1]), operand.base, operand.offset);
    } else if (m == "nop") {
      fb.nop();
    } else if (m == "halt") {
      fb.halt();
      at_function_boundary_ = true;
    } else if (m == "ipoint") {
      require(ops.size() == 1, "ipoint id");
      fb.ipoint(imm(ops[0]));
    } else if (m == "flush") {
      require(ops.size() == 1, "flush [mem]");
      const MemOperand operand = mem(ops[0]);
      fb.flush(operand.base, operand.offset);
    } else if (m == "rd" || m == "rdtick") {
      require(ops.size() >= 1, "rdtick rd");
      fb.op3(Opcode::kRdtick, reg(ops.back()), 0, 0);
    } else if (branch_opcode(m)) {
      require(ops.size() == 1, m + " label");
      fb.branch(*branch_opcode(m), ops[0]);
    } else if (m == "faddd" || m == "fsubd" || m == "fmuld" || m == "fdivd") {
      require(ops.size() == 3, m + " f1, f2, fd");
      const Opcode op = m == "faddd"   ? Opcode::kFaddd
                        : m == "fsubd" ? Opcode::kFsubd
                        : m == "fmuld" ? Opcode::kFmuld
                                       : Opcode::kFdivd;
      fb.op3(op, reg(ops[2]), reg(ops[0]), reg(ops[1]));
    } else if (m == "fcmpd") {
      require(ops.size() == 2, "fcmpd f1, f2");
      fb.fcmpd(reg(ops[0]), reg(ops[1]));
    } else if (m == "fitod") {
      require(ops.size() == 2, "fitod rs, fd");
      fb.fitod(reg(ops[1]), reg(ops[0]));
    } else if (m == "fdtoi") {
      require(ops.size() == 2, "fdtoi f, rd");
      fb.fdtoi(reg(ops[1]), reg(ops[0]));
    } else {
      fail("unknown mnemonic '" + m + "'");
    }
  }

  static std::optional<Opcode> branch_opcode(const std::string& m) {
    static const std::map<std::string, Opcode> kBranches = {
        {"ba", Opcode::kBa},     {"bn", Opcode::kBn},
        {"be", Opcode::kBe},     {"bne", Opcode::kBne},
        {"bg", Opcode::kBg},     {"ble", Opcode::kBle},
        {"bge", Opcode::kBge},   {"bl", Opcode::kBl},
        {"bgu", Opcode::kBgu},   {"bleu", Opcode::kBleu},
        {"bcc", Opcode::kBcc},   {"bcs", Opcode::kBcs},
        {"bpos", Opcode::kBpos}, {"bneg", Opcode::kBneg},
        {"fbe", Opcode::kFbe},   {"fbne", Opcode::kFbne},
        {"fbl", Opcode::kFbl},   {"fbg", Opcode::kFbg},
        {"fble", Opcode::kFble}, {"fbge", Opcode::kFbge}};
    const auto it = kBranches.find(m);
    return it == kBranches.end() ? std::nullopt
                                 : std::optional<Opcode>(it->second);
  }

  /// Attach a link-time fixup to the instruction just emitted; folded into
  /// the Function when it is finished.
  void fixup_last(FixupKind kind, const std::string& symbol) {
    pending_fixups_.push_back(
        PendingFixup{builder_->size() - 1, kind, symbol});
  }

  struct PendingFixup {
    std::size_t index;
    FixupKind kind;
    std::string symbol;
  };

  std::string_view source_;
  Program program_;
  std::unique_ptr<FunctionBuilder> builder_;
  std::vector<PendingFixup> pending_fixups_;
  std::string entry_;
  std::size_t line_ = 0;
  bool at_function_boundary_ = false;
};

} // namespace

Program assemble(std::string_view source) { return Assembler(source).run(); }

} // namespace proxima::isa
