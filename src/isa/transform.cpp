#include "transform.hpp"

#include <algorithm>
#include <stdexcept>

namespace proxima::isa {

void apply_edits(Function& function, std::vector<CodeEdit> edits,
                 const std::set<std::size_t>& consumed_fixups) {
  std::sort(edits.begin(), edits.end(),
            [](const CodeEdit& a, const CodeEdit& b) { return a.index < b.index; });
  for (std::size_t i = 1; i < edits.size(); ++i) {
    if (edits[i].index == edits[i - 1].index) {
      throw std::invalid_argument(function.name +
                                  ": two edits at the same instruction");
    }
  }

  std::vector<Instruction> new_code;
  std::vector<Fixup> new_fixups;
  std::vector<std::size_t> index_map(function.code.size() + 1, 0);

  std::size_t edit_pos = 0;
  for (std::size_t old_index = 0; old_index <= function.code.size();
       ++old_index) {
    index_map[old_index] = new_code.size();
    if (old_index == function.code.size()) {
      break;
    }
    if (edit_pos < edits.size() && edits[edit_pos].index == old_index) {
      const CodeEdit& edit = edits[edit_pos++];
      const std::size_t base = new_code.size();
      for (const Fixup& fixup : edit.fixups) {
        new_fixups.push_back(
            {base + fixup.index, fixup.kind, fixup.symbol, fixup.addend});
      }
      new_code.insert(new_code.end(), edit.code.begin(), edit.code.end());
      if (edit.keep_original) {
        // Labels bound to the original instruction now point at the
        // inserted sequence's start (index_map already does), and the
        // original instruction follows it.
        new_code.push_back(function.code[old_index]);
      }
    } else {
      new_code.push_back(function.code[old_index]);
    }
  }

  for (std::size_t i = 0; i < function.fixups.size(); ++i) {
    if (consumed_fixups.contains(i)) {
      continue;
    }
    Fixup fixup = function.fixups[i];
    const std::size_t old_index = fixup.index;
    fixup.index = index_map[old_index];
    // A kept original shifted by its own insertion: the fixup belongs to
    // the original instruction, which sits after the inserted code.
    for (const CodeEdit& edit : edits) {
      if (edit.keep_original && edit.index == old_index) {
        fixup.index += edit.code.size();
      }
    }
    new_fixups.push_back(fixup);
  }

  for (auto& [name, index] : function.labels) {
    index = index_map[index];
  }
  if (function.has_prologue) {
    const std::size_t old_index = function.prologue_index;
    function.prologue_index = index_map[old_index];
    for (const CodeEdit& edit : edits) {
      if (edit.keep_original && edit.index == old_index) {
        function.prologue_index += edit.code.size();
      }
    }
  }
  function.code = std::move(new_code);
  function.fixups = std::move(new_fixups);
}

} // namespace proxima::isa
