// SPARC v8 register-window register model.
//
// 32 visible integer registers: 8 globals shared by all windows, and 24
// windowed registers (8 outs / 8 locals / 8 ins) that rotate on
// SAVE/RESTORE.  The stack pointer is %o6 and the frame pointer %i6, as in
// the SPARC ABI; %g6/%g7 are reserved for system software — the DSR pass
// uses them as scratch exactly because the ABI guarantees user code never
// holds live values there.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace proxima::isa {

inline constexpr std::uint8_t kG0 = 0; // hardwired zero
inline constexpr std::uint8_t kG1 = 1;
inline constexpr std::uint8_t kG2 = 2;
inline constexpr std::uint8_t kG3 = 3;
inline constexpr std::uint8_t kG4 = 4;
inline constexpr std::uint8_t kG5 = 5;
inline constexpr std::uint8_t kG6 = 6; // reserved: DSR runtime scratch
inline constexpr std::uint8_t kG7 = 7; // reserved: DSR runtime scratch

inline constexpr std::uint8_t kO0 = 8;
inline constexpr std::uint8_t kO1 = 9;
inline constexpr std::uint8_t kO2 = 10;
inline constexpr std::uint8_t kO3 = 11;
inline constexpr std::uint8_t kO4 = 12;
inline constexpr std::uint8_t kO5 = 13;
inline constexpr std::uint8_t kSp = 14; // %o6: stack pointer
inline constexpr std::uint8_t kO7 = 15; // call return address

inline constexpr std::uint8_t kL0 = 16;
inline constexpr std::uint8_t kL1 = 17;
inline constexpr std::uint8_t kL2 = 18;
inline constexpr std::uint8_t kL3 = 19;
inline constexpr std::uint8_t kL4 = 20;
inline constexpr std::uint8_t kL5 = 21;
inline constexpr std::uint8_t kL6 = 22;
inline constexpr std::uint8_t kL7 = 23;

inline constexpr std::uint8_t kI0 = 24;
inline constexpr std::uint8_t kI1 = 25;
inline constexpr std::uint8_t kI2 = 26;
inline constexpr std::uint8_t kI3 = 27;
inline constexpr std::uint8_t kI4 = 28;
inline constexpr std::uint8_t kI5 = 29;
inline constexpr std::uint8_t kFp = 30; // %i6: frame pointer
inline constexpr std::uint8_t kI7 = 31; // callee view of return address

inline constexpr std::uint32_t kRegisterCount = 32;

/// Floating-point registers: 16 double-precision registers f0..f15.
inline constexpr std::uint32_t kFpRegisterCount = 16;

/// Printable name of an integer register.
constexpr std::string_view register_name(std::uint8_t reg) {
  constexpr std::array<std::string_view, 32> kNames = {
      "%g0", "%g1", "%g2", "%g3", "%g4", "%g5", "%g6", "%g7",
      "%o0", "%o1", "%o2", "%o3", "%o4", "%o5", "%sp", "%o7",
      "%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7",
      "%i0", "%i1", "%i2", "%i3", "%i4", "%i5", "%fp", "%i7"};
  return reg < kNames.size() ? kNames[reg] : "%??";
}

} // namespace proxima::isa
