// Opcode set of the mini-SPARC ISA.
//
// A deliberately reduced but fully executable SPARC-v8-flavoured ISA:
// fixed 32-bit big-endian instructions, register windows with
// SAVE/RESTORE, integer + double-precision FP, condition codes, and the
// FLUSH instruction the DSR invalidation routine relies on.  Four
// encodings exist (R, I, B, H — see instruction.hpp).  Simplifications
// versus real SPARC v8 are documented in DESIGN.md: no branch delay slots,
// 14-bit immediates (with SETHI covering the upper 19 bits), and a single
// trap type (window spill/fill, handled as microcode by the VM).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace proxima::isa {

enum class Opcode : std::uint8_t {
  kNop = 0,

  // Integer ALU, register form.
  kAdd, kSub, kAnd, kOr, kXor, kSll, kSrl, kSra, kMul, kDiv,
  kAddcc, kSubcc, kOrcc,

  // Integer ALU, immediate form (simm14 unless noted).
  kAddi, kSubi, kAndi, kOri, kXori, kSlli, kSrli, kSrai, kMuli, kDivi,
  kAddcci, kSubcci,
  /// OR with zero-extended 13-bit immediate: pairs with kSethi to build
  /// arbitrary 32-bit constants (%hi/%lo idiom).
  kOrlo,
  /// rd = imm19 << 13 (the %hi part of an absolute address).
  kSethi,

  // Memory: word, byte, doubleword; register and immediate addressing.
  kLd, kLdx, kSt, kStx,
  kLdb, kLdbx, kStb, kStbx,
  kLdd, kLddx, kStd, kStdx,
  // Double-precision FP load/store.
  kLdf, kLdfx, kStf, kStfx,

  // Control transfer.
  kCall,  // B-form: pc-relative, return address to %o7
  kJmpl,  // I-form: rd = pc, jump to rs1 + simm14 (indirect call / ret)

  // Conditional branches on integer condition codes (B-form).
  kBa, kBn, kBe, kBne, kBg, kBle, kBge, kBl, kBgu, kBleu, kBcc, kBcs,
  kBpos, kBneg,

  // Conditional branches on FP condition codes (B-form).
  kFbe, kFbne, kFbl, kFbg, kFble, kFbge,

  // Register-window management.
  kSave,    // I-form: new window; rd(new) = rs1(old) + simm14
  kSavex,   // R-form: new window; rd(new) = rs1(old) + rs2(old)
  kRestore, // R-form: previous window; rd(old) = rs1(cur) + rs2(cur)

  // Double-precision floating point (operands are FP register indices).
  kFaddd, kFsubd, kFmuld, kFdivd, kFsqrtd,
  kFcmpd,          // sets fcc
  kFitod, kFdtoi,  // int <-> double conversion (via FP registers)
  kFmovd, kFnegd, kFabsd,

  // Platform.
  kRdtick, // rd = low 32 bits of the cycle counter (execution time register)
  kIpoint, // B-form imm: RVS instrumentation point; timestamp to trace bank
  kFlush,  // I-form: invalidate the cache line holding [rs1 + simm14]
  kHalt,   // stop the core (end of partition job)
  /// Lazy-relocation trap (B-form, imm = function id).  Executed by the
  /// per-function stub on first call; the DSR runtime relocates the
  /// function, charges the relocation cost, and execution continues in the
  /// stub which tail-jumps through the updated table (Section III.B.1).
  kTrapReloc,

  kOpcodeCount,
};

/// Instruction encodings.
enum class Format : std::uint8_t {
  kR, // op rd rs1 rs2
  kI, // op rd rs1 simm14
  kB, // op disp24/imm24
  kH, // op rd imm19 (SETHI)
};

struct OpcodeInfo {
  std::string_view name;
  Format format;
};

namespace detail {
constexpr std::array<OpcodeInfo,
                     static_cast<std::size_t>(Opcode::kOpcodeCount)>
make_opcode_table() {
  std::array<OpcodeInfo, static_cast<std::size_t>(Opcode::kOpcodeCount)> t{};
  auto set = [&t](Opcode op, std::string_view name, Format f) {
    t[static_cast<std::size_t>(op)] = OpcodeInfo{name, f};
  };
  set(Opcode::kNop, "nop", Format::kB);
  set(Opcode::kAdd, "add", Format::kR);
  set(Opcode::kSub, "sub", Format::kR);
  set(Opcode::kAnd, "and", Format::kR);
  set(Opcode::kOr, "or", Format::kR);
  set(Opcode::kXor, "xor", Format::kR);
  set(Opcode::kSll, "sll", Format::kR);
  set(Opcode::kSrl, "srl", Format::kR);
  set(Opcode::kSra, "sra", Format::kR);
  set(Opcode::kMul, "smul", Format::kR);
  set(Opcode::kDiv, "sdiv", Format::kR);
  set(Opcode::kAddcc, "addcc", Format::kR);
  set(Opcode::kSubcc, "subcc", Format::kR);
  set(Opcode::kOrcc, "orcc", Format::kR);
  set(Opcode::kAddi, "add", Format::kI);
  set(Opcode::kSubi, "sub", Format::kI);
  set(Opcode::kAndi, "and", Format::kI);
  set(Opcode::kOri, "or", Format::kI);
  set(Opcode::kXori, "xor", Format::kI);
  set(Opcode::kSlli, "sll", Format::kI);
  set(Opcode::kSrli, "srl", Format::kI);
  set(Opcode::kSrai, "sra", Format::kI);
  set(Opcode::kMuli, "smul", Format::kI);
  set(Opcode::kDivi, "sdiv", Format::kI);
  set(Opcode::kAddcci, "addcc", Format::kI);
  set(Opcode::kSubcci, "subcc", Format::kI);
  set(Opcode::kOrlo, "orlo", Format::kI);
  set(Opcode::kSethi, "sethi", Format::kH);
  set(Opcode::kLd, "ld", Format::kI);
  set(Opcode::kLdx, "ld", Format::kR);
  set(Opcode::kSt, "st", Format::kI);
  set(Opcode::kStx, "st", Format::kR);
  set(Opcode::kLdb, "ldub", Format::kI);
  set(Opcode::kLdbx, "ldub", Format::kR);
  set(Opcode::kStb, "stb", Format::kI);
  set(Opcode::kStbx, "stb", Format::kR);
  set(Opcode::kLdd, "ldd", Format::kI);
  set(Opcode::kLddx, "ldd", Format::kR);
  set(Opcode::kStd, "std", Format::kI);
  set(Opcode::kStdx, "std", Format::kR);
  set(Opcode::kLdf, "lddf", Format::kI);
  set(Opcode::kLdfx, "lddf", Format::kR);
  set(Opcode::kStf, "stdf", Format::kI);
  set(Opcode::kStfx, "stdf", Format::kR);
  set(Opcode::kCall, "call", Format::kB);
  set(Opcode::kJmpl, "jmpl", Format::kI);
  set(Opcode::kBa, "ba", Format::kB);
  set(Opcode::kBn, "bn", Format::kB);
  set(Opcode::kBe, "be", Format::kB);
  set(Opcode::kBne, "bne", Format::kB);
  set(Opcode::kBg, "bg", Format::kB);
  set(Opcode::kBle, "ble", Format::kB);
  set(Opcode::kBge, "bge", Format::kB);
  set(Opcode::kBl, "bl", Format::kB);
  set(Opcode::kBgu, "bgu", Format::kB);
  set(Opcode::kBleu, "bleu", Format::kB);
  set(Opcode::kBcc, "bcc", Format::kB);
  set(Opcode::kBcs, "bcs", Format::kB);
  set(Opcode::kBpos, "bpos", Format::kB);
  set(Opcode::kBneg, "bneg", Format::kB);
  set(Opcode::kFbe, "fbe", Format::kB);
  set(Opcode::kFbne, "fbne", Format::kB);
  set(Opcode::kFbl, "fbl", Format::kB);
  set(Opcode::kFbg, "fbg", Format::kB);
  set(Opcode::kFble, "fble", Format::kB);
  set(Opcode::kFbge, "fbge", Format::kB);
  set(Opcode::kSave, "save", Format::kI);
  set(Opcode::kSavex, "save", Format::kR);
  set(Opcode::kRestore, "restore", Format::kR);
  set(Opcode::kFaddd, "faddd", Format::kR);
  set(Opcode::kFsubd, "fsubd", Format::kR);
  set(Opcode::kFmuld, "fmuld", Format::kR);
  set(Opcode::kFdivd, "fdivd", Format::kR);
  set(Opcode::kFsqrtd, "fsqrtd", Format::kR);
  set(Opcode::kFcmpd, "fcmpd", Format::kR);
  set(Opcode::kFitod, "fitod", Format::kR);
  set(Opcode::kFdtoi, "fdtoi", Format::kR);
  set(Opcode::kFmovd, "fmovd", Format::kR);
  set(Opcode::kFnegd, "fnegd", Format::kR);
  set(Opcode::kFabsd, "fabsd", Format::kR);
  set(Opcode::kRdtick, "rdtick", Format::kR);
  set(Opcode::kIpoint, "ipoint", Format::kB);
  set(Opcode::kFlush, "flush", Format::kI);
  set(Opcode::kHalt, "halt", Format::kB);
  set(Opcode::kTrapReloc, "trapreloc", Format::kB);
  return t;
}
} // namespace detail

inline constexpr auto kOpcodeTable = detail::make_opcode_table();

constexpr const OpcodeInfo& opcode_info(Opcode op) {
  return kOpcodeTable[static_cast<std::size_t>(op)];
}

constexpr bool is_valid_opcode(std::uint8_t raw) {
  return raw < static_cast<std::uint8_t>(Opcode::kOpcodeCount) &&
         !kOpcodeTable[raw].name.empty();
}

/// True for B-format conditional/unconditional branches (not call/ipoint).
constexpr bool is_branch(Opcode op) {
  return op >= Opcode::kBa && op <= Opcode::kFbge;
}

constexpr bool is_fp_op(Opcode op) {
  return (op >= Opcode::kFaddd && op <= Opcode::kFabsd);
}

/// Opcodes whose rd/rs fields index FP registers rather than integer ones.
constexpr bool uses_fp_registers(Opcode op) {
  return is_fp_op(op) || op == Opcode::kLdf || op == Opcode::kLdfx ||
         op == Opcode::kStf || op == Opcode::kStfx;
}

} // namespace proxima::isa
