// Ergonomic construction of mini-SPARC functions.
//
// The builder plays the role of the compiler back-end: application code
// (the space case study, tests, examples) is written against this API and
// emitted as relocatable Functions.  Branches take label names; calls and
// address materialisations take symbol names; everything stays symbolic
// until link time.
#pragma once

#include "program.hpp"

#include <string>
#include <vector>

namespace proxima::isa {

class BuildError : public std::runtime_error {
public:
  explicit BuildError(const std::string& what) : std::runtime_error(what) {}
};

class FunctionBuilder {
public:
  explicit FunctionBuilder(std::string name);

  // --- structure -----------------------------------------------------

  /// Standard prologue: save %sp, -frame_bytes, %sp.  The frame always
  /// reserves the 64-byte register-window save area the SPARC ABI demands
  /// (window spills write there), so frame_bytes must be >= 64 and a
  /// multiple of 8.
  FunctionBuilder& prologue(std::uint32_t frame_bytes);

  /// Standard epilogue for non-leaf functions: restore; jmpl %o7+4, %g0.
  FunctionBuilder& epilogue();

  /// Leaf return: jmpl %o7+4, %g0 (no window rotation).
  FunctionBuilder& ret_leaf();

  /// Bind a label to the next emitted instruction.
  FunctionBuilder& label(const std::string& name);

  // --- control flow ---------------------------------------------------

  FunctionBuilder& call(const std::string& function_name);
  FunctionBuilder& branch(Opcode branch_op, const std::string& label);
  FunctionBuilder& ba(const std::string& l) { return branch(Opcode::kBa, l); }
  FunctionBuilder& be(const std::string& l) { return branch(Opcode::kBe, l); }
  FunctionBuilder& bne(const std::string& l) { return branch(Opcode::kBne, l); }
  FunctionBuilder& bg(const std::string& l) { return branch(Opcode::kBg, l); }
  FunctionBuilder& bge(const std::string& l) { return branch(Opcode::kBge, l); }
  FunctionBuilder& bl(const std::string& l) { return branch(Opcode::kBl, l); }
  FunctionBuilder& ble(const std::string& l) { return branch(Opcode::kBle, l); }
  FunctionBuilder& bgu(const std::string& l) { return branch(Opcode::kBgu, l); }
  FunctionBuilder& bleu(const std::string& l) { return branch(Opcode::kBleu, l); }

  // --- data movement ---------------------------------------------------

  /// rd <- 32-bit constant (one or two instructions as needed).
  FunctionBuilder& li(std::uint8_t rd, std::int32_t value);

  /// rd <- absolute address of `symbol` + addend (sethi/orlo pair with
  /// link-time fixups).
  FunctionBuilder& load_address(std::uint8_t rd, const std::string& symbol,
                                std::int32_t addend = 0);

  FunctionBuilder& mov(std::uint8_t rd, std::uint8_t rs);

  // --- raw emission ----------------------------------------------------

  FunctionBuilder& emit(const Instruction& instr);
  FunctionBuilder& op3(Opcode op, std::uint8_t rd, std::uint8_t rs1,
                       std::uint8_t rs2);
  FunctionBuilder& opi(Opcode op, std::uint8_t rd, std::uint8_t rs1,
                       std::int32_t imm);

  // Common instructions, immediate and register forms.
  FunctionBuilder& add(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2) {
    return op3(Opcode::kAdd, rd, rs1, rs2);
  }
  FunctionBuilder& addi(std::uint8_t rd, std::uint8_t rs1, std::int32_t imm) {
    return opi(Opcode::kAddi, rd, rs1, imm);
  }
  FunctionBuilder& sub(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2) {
    return op3(Opcode::kSub, rd, rs1, rs2);
  }
  FunctionBuilder& subi(std::uint8_t rd, std::uint8_t rs1, std::int32_t imm) {
    return opi(Opcode::kSubi, rd, rs1, imm);
  }
  FunctionBuilder& subcc(std::uint8_t rs1, std::uint8_t rs2) {
    return op3(Opcode::kSubcc, kG0, rs1, rs2);
  }
  FunctionBuilder& subcci(std::uint8_t rs1, std::int32_t imm) {
    return opi(Opcode::kSubcci, kG0, rs1, imm);
  }
  FunctionBuilder& muli(std::uint8_t rd, std::uint8_t rs1, std::int32_t imm) {
    return opi(Opcode::kMuli, rd, rs1, imm);
  }
  FunctionBuilder& mul(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2) {
    return op3(Opcode::kMul, rd, rs1, rs2);
  }
  FunctionBuilder& slli(std::uint8_t rd, std::uint8_t rs1, std::int32_t imm) {
    return opi(Opcode::kSlli, rd, rs1, imm);
  }
  FunctionBuilder& srli(std::uint8_t rd, std::uint8_t rs1, std::int32_t imm) {
    return opi(Opcode::kSrli, rd, rs1, imm);
  }
  FunctionBuilder& andi(std::uint8_t rd, std::uint8_t rs1, std::int32_t imm) {
    return opi(Opcode::kAndi, rd, rs1, imm);
  }

  // Loads/stores (immediate addressing).
  FunctionBuilder& ld(std::uint8_t rd, std::uint8_t base, std::int32_t off) {
    return opi(Opcode::kLd, rd, base, off);
  }
  FunctionBuilder& st(std::uint8_t rs, std::uint8_t base, std::int32_t off) {
    return opi(Opcode::kSt, rs, base, off);
  }
  FunctionBuilder& ldb(std::uint8_t rd, std::uint8_t base, std::int32_t off) {
    return opi(Opcode::kLdb, rd, base, off);
  }
  FunctionBuilder& stb(std::uint8_t rs, std::uint8_t base, std::int32_t off) {
    return opi(Opcode::kStb, rs, base, off);
  }
  FunctionBuilder& ldf(std::uint8_t frd, std::uint8_t base, std::int32_t off) {
    return opi(Opcode::kLdf, frd, base, off);
  }
  FunctionBuilder& stf(std::uint8_t frs, std::uint8_t base, std::int32_t off) {
    return opi(Opcode::kStf, frs, base, off);
  }
  // Register-indexed forms.
  FunctionBuilder& ldx(std::uint8_t rd, std::uint8_t b, std::uint8_t idx) {
    return op3(Opcode::kLdx, rd, b, idx);
  }
  FunctionBuilder& stx(std::uint8_t rs, std::uint8_t b, std::uint8_t idx) {
    return op3(Opcode::kStx, rs, b, idx);
  }
  FunctionBuilder& ldfx(std::uint8_t frd, std::uint8_t b, std::uint8_t idx) {
    return op3(Opcode::kLdfx, frd, b, idx);
  }
  FunctionBuilder& stfx(std::uint8_t frs, std::uint8_t b, std::uint8_t idx) {
    return op3(Opcode::kStfx, frs, b, idx);
  }

  // Floating point.
  FunctionBuilder& faddd(std::uint8_t fd, std::uint8_t f1, std::uint8_t f2) {
    return op3(Opcode::kFaddd, fd, f1, f2);
  }
  FunctionBuilder& fsubd(std::uint8_t fd, std::uint8_t f1, std::uint8_t f2) {
    return op3(Opcode::kFsubd, fd, f1, f2);
  }
  FunctionBuilder& fmuld(std::uint8_t fd, std::uint8_t f1, std::uint8_t f2) {
    return op3(Opcode::kFmuld, fd, f1, f2);
  }
  FunctionBuilder& fdivd(std::uint8_t fd, std::uint8_t f1, std::uint8_t f2) {
    return op3(Opcode::kFdivd, fd, f1, f2);
  }
  FunctionBuilder& fcmpd(std::uint8_t f1, std::uint8_t f2) {
    return op3(Opcode::kFcmpd, 0, f1, f2);
  }
  FunctionBuilder& fitod(std::uint8_t fd, std::uint8_t int_rs) {
    return op3(Opcode::kFitod, fd, int_rs, 0);
  }
  FunctionBuilder& fdtoi(std::uint8_t int_rd, std::uint8_t f1) {
    return op3(Opcode::kFdtoi, int_rd, f1, 0);
  }

  FunctionBuilder& nop() { return emit(make_b(Opcode::kNop, 0)); }
  FunctionBuilder& halt() { return emit(make_b(Opcode::kHalt, 0)); }
  FunctionBuilder& ipoint(std::int32_t id) {
    return emit(make_b(Opcode::kIpoint, id));
  }
  FunctionBuilder& flush(std::uint8_t base, std::int32_t off) {
    return opi(Opcode::kFlush, kG0, base, off);
  }

  /// Number of instructions emitted so far.
  std::size_t size() const noexcept { return function_.code.size(); }

  /// Finalise: verifies all referenced labels exist and returns the
  /// function.  The builder must not be reused afterwards.
  Function build();

private:
  Function function_;
  bool built_ = false;
};

} // namespace proxima::isa
