// Linker: assigns addresses to functions and data objects, resolves fixups,
// and produces a loadable image.
//
// Supports explicit placement (put a symbol at a chosen address) and custom
// link order.  Both matter for the reproduction: the incremental-integration
// bench (A6) re-links with a different order to show how a non-randomised
// binary's timing shifts when modules move, and the case study uses explicit
// placement to recreate the paper's "bad and rare cache layout" of the COTS
// binary (Section VI).
#pragma once

#include "program.hpp"

#include "mem/guest_memory.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace proxima::isa {

class LinkError : public std::runtime_error {
public:
  explicit LinkError(const std::string& what) : std::runtime_error(what) {}
};

struct LinkOptions {
  std::uint32_t code_base = 0x4000'0000; // LEON3 SDRAM base
  std::uint32_t data_base = 0x4010'0000;
  std::uint32_t function_align = 8;
  /// Optional link order for functions (subset allowed; the rest keep
  /// program order after the listed ones).
  std::vector<std::string> function_order;
  /// symbol name -> absolute address, overrides sequential layout.
  std::map<std::string, std::uint32_t> placement;
};

struct Symbol {
  std::string name;
  std::uint32_t addr = 0;
  std::uint32_t size = 0;
  bool is_code = false;
};

/// Per-function record consumed by the DSR runtime (this is the "metadata"
/// the compiler pass generates for the relocation loop).
struct FunctionRecord {
  std::string name;
  std::uint32_t id = 0; // index in program order: functab/stackoff slot
  std::uint32_t addr = 0;
  std::uint32_t size_bytes = 0;
  bool has_prologue = false;
  std::uint32_t frame_bytes = 0;
};

class LinkedImage {
public:
  const Symbol& symbol(const std::string& name) const;
  bool has_symbol(const std::string& name) const {
    return symbols_.contains(name);
  }

  const std::vector<FunctionRecord>& functions() const noexcept {
    return function_records_;
  }
  const FunctionRecord& function(const std::string& name) const;

  std::uint32_t entry_addr() const noexcept { return entry_addr_; }
  std::uint32_t code_begin() const noexcept { return code_begin_; }
  std::uint32_t code_end() const noexcept { return code_end_; }
  std::uint32_t data_begin() const noexcept { return data_begin_; }
  std::uint32_t data_end() const noexcept { return data_end_; }

  /// Write every section into guest memory (the GRMON "load" step).
  void load_into(mem::GuestMemory& memory) const;

  /// Total bytes of code in the image.
  std::uint32_t code_bytes() const;

private:
  friend LinkedImage link(const Program&, const LinkOptions&);

  struct Section {
    std::uint32_t addr = 0;
    std::vector<std::uint8_t> bytes;
  };

  std::map<std::string, Symbol> symbols_;
  std::vector<FunctionRecord> function_records_;
  std::vector<Section> sections_;
  std::uint32_t entry_addr_ = 0;
  std::uint32_t code_begin_ = 0;
  std::uint32_t code_end_ = 0;
  std::uint32_t data_begin_ = 0;
  std::uint32_t data_end_ = 0;
};

/// Link a program.  Throws LinkError on undefined symbols, displacement
/// overflow, or overlapping placements.
LinkedImage link(const Program& program, const LinkOptions& options = {});

} // namespace proxima::isa
