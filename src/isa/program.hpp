// Pre-link program representation.
//
// A Program is a set of functions (instruction lists with *symbolic*
// control-flow and address references) plus data objects.  Branch targets,
// call targets and absolute addresses stay symbolic (fixups) until link
// time; this is what lets the DSR compiler pass insert or replace
// instructions without breaking displacements — mirroring how the real pass
// works on LLVM IR before code emission.
#pragma once

#include "instruction.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace proxima::isa {

enum class FixupKind : std::uint8_t {
  kBranch, // B-form: disp24 <- label index - instruction index
  kCall,   // B-form: disp24 <- (callee addr - instr addr) / 4
  kHi19,   // H-form: imm19  <- (symbol addr + addend) >> 13
  kLo13,   // I-form: imm    <- (symbol addr + addend) & 0x1fff
};

struct Fixup {
  std::size_t index = 0; // instruction index within the function
  FixupKind kind = FixupKind::kBranch;
  std::string symbol;    // label name (kBranch) or global symbol name
  std::int32_t addend = 0;

  friend bool operator==(const Fixup&, const Fixup&) = default;
};

struct Function {
  std::string name;
  std::vector<Instruction> code;
  std::map<std::string, std::size_t> labels; // local label -> instr index
  std::vector<Fixup> fixups;

  /// Declared stack frame size; meaningful when has_prologue.
  std::uint32_t frame_bytes = 0;
  bool has_prologue = false;
  std::size_t prologue_index = 0; // index of the SAVE instruction

  std::uint32_t size_bytes() const {
    return static_cast<std::uint32_t>(code.size()) * 4;
  }
};

struct DataObject {
  std::string name;
  std::uint32_t size = 0;
  std::uint32_t align = 8;
  /// Optional initial contents (zero-filled to `size` when shorter).
  std::vector<std::uint8_t> init;
};

struct Program {
  std::vector<Function> functions;
  std::vector<DataObject> data;
  std::string entry = "main";

  Function* find_function(const std::string& name) {
    for (Function& f : functions) {
      if (f.name == name) {
        return &f;
      }
    }
    return nullptr;
  }
  const Function* find_function(const std::string& name) const {
    return const_cast<Program*>(this)->find_function(name);
  }
  DataObject* find_data(const std::string& name) {
    for (DataObject& d : data) {
      if (d.name == name) {
        return &d;
      }
    }
    return nullptr;
  }

  /// Total code size in bytes (pre-link, no alignment padding).
  std::uint32_t code_bytes() const {
    std::uint32_t total = 0;
    for (const Function& f : functions) {
      total += f.size_bytes();
    }
    return total;
  }

  /// Static instruction count across all functions — the number of
  /// DecodedOp slots a full predecode pass of this program resolves
  /// (vm/decode.hpp predecodes the linked image of exactly these words).
  std::size_t total_instructions() const {
    std::size_t total = 0;
    for (const Function& f : functions) {
      total += f.code.size();
    }
    return total;
  }
};

} // namespace proxima::isa
