#include "linker.hpp"

#include <algorithm>
#include <sstream>

namespace proxima::isa {

namespace {

std::uint32_t align_up(std::uint32_t value, std::uint32_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

struct Range {
  std::uint32_t begin;
  std::uint32_t end; // exclusive
};

bool overlaps(const Range& a, const Range& b) {
  return a.begin < b.end && b.begin < a.end;
}

/// Sequential cursor that skips explicitly reserved ranges.
class Cursor {
public:
  Cursor(std::uint32_t start, std::vector<Range> reserved)
      : next_(start), reserved_(std::move(reserved)) {
    std::sort(reserved_.begin(), reserved_.end(),
              [](const Range& a, const Range& b) { return a.begin < b.begin; });
  }

  std::uint32_t take(std::uint32_t size, std::uint32_t alignment) {
    std::uint32_t addr = align_up(next_, alignment);
    bool moved = true;
    while (moved) {
      moved = false;
      for (const Range& r : reserved_) {
        if (overlaps({addr, addr + size}, r)) {
          addr = align_up(r.end, alignment);
          moved = true;
        }
      }
    }
    next_ = addr + size;
    return addr;
  }

private:
  std::uint32_t next_;
  std::vector<Range> reserved_;
};

} // namespace

const Symbol& LinkedImage::symbol(const std::string& name) const {
  const auto it = symbols_.find(name);
  if (it == symbols_.end()) {
    throw LinkError("unknown symbol '" + name + "'");
  }
  return it->second;
}

const FunctionRecord& LinkedImage::function(const std::string& name) const {
  for (const FunctionRecord& record : function_records_) {
    if (record.name == name) {
      return record;
    }
  }
  throw LinkError("unknown function '" + name + "'");
}

void LinkedImage::load_into(mem::GuestMemory& memory) const {
  for (const Section& section : sections_) {
    memory.load(section.addr, section.bytes);
  }
}

std::uint32_t LinkedImage::code_bytes() const {
  std::uint32_t total = 0;
  for (const FunctionRecord& record : function_records_) {
    total += record.size_bytes;
  }
  return total;
}

LinkedImage link(const Program& program, const LinkOptions& options) {
  LinkedImage image;

  // ---- order functions ------------------------------------------------
  std::vector<const Function*> ordered;
  ordered.reserve(program.functions.size());
  for (const std::string& name : options.function_order) {
    const Function* f = program.find_function(name);
    if (f == nullptr) {
      throw LinkError("function_order names unknown function '" + name + "'");
    }
    ordered.push_back(f);
  }
  for (const Function& f : program.functions) {
    if (std::find(ordered.begin(), ordered.end(), &f) == ordered.end()) {
      ordered.push_back(&f);
    }
  }

  // ---- collect explicit placements -------------------------------------
  std::vector<Range> reserved;
  for (const auto& [name, addr] : options.placement) {
    std::uint32_t size = 0;
    if (const Function* f = program.find_function(name)) {
      size = f->size_bytes();
    } else {
      bool found = false;
      for (const DataObject& d : program.data) {
        if (d.name == name) {
          size = d.size;
          found = true;
          break;
        }
      }
      if (!found) {
        throw LinkError("placement names unknown symbol '" + name + "'");
      }
    }
    const Range range{addr, addr + size};
    for (const Range& other : reserved) {
      if (overlaps(range, other)) {
        throw LinkError("placement overlap at symbol '" + name + "'");
      }
    }
    reserved.push_back(range);
  }

  // ---- assign code addresses -------------------------------------------
  Cursor code_cursor(options.code_base, reserved);
  image.code_begin_ = options.code_base;
  std::uint32_t code_end = options.code_base;
  // ids follow *program* order so they are stable across re-links with a
  // different function_order (the DSR metadata tables index by id).
  std::map<const Function*, std::uint32_t> ids;
  for (std::uint32_t i = 0; i < program.functions.size(); ++i) {
    ids[&program.functions[i]] = i;
  }
  for (const Function* f : ordered) {
    std::uint32_t addr = 0;
    if (const auto it = options.placement.find(f->name);
        it != options.placement.end()) {
      addr = it->second;
      if (addr % 4 != 0) {
        throw LinkError(f->name + ": code placement must be word-aligned");
      }
    } else {
      addr = code_cursor.take(f->size_bytes(), options.function_align);
    }
    image.symbols_[f->name] =
        Symbol{f->name, addr, f->size_bytes(), /*is_code=*/true};
    code_end = std::max(code_end, addr + f->size_bytes());
  }
  image.code_end_ = code_end;

  // ---- assign data addresses -------------------------------------------
  Cursor data_cursor(options.data_base, reserved);
  image.data_begin_ = options.data_base;
  std::uint32_t data_end = options.data_base;
  for (const DataObject& d : program.data) {
    if (image.symbols_.contains(d.name)) {
      throw LinkError("duplicate symbol '" + d.name + "'");
    }
    std::uint32_t addr = 0;
    if (const auto it = options.placement.find(d.name);
        it != options.placement.end()) {
      addr = it->second;
    } else {
      addr = data_cursor.take(d.size, std::max<std::uint32_t>(d.align, 1));
    }
    image.symbols_[d.name] = Symbol{d.name, addr, d.size, /*is_code=*/false};
    data_end = std::max(data_end, addr + d.size);
  }
  image.data_end_ = data_end;

  // ---- function records (DSR metadata source) ---------------------------
  image.function_records_.resize(program.functions.size());
  for (const Function* f : ordered) {
    const std::uint32_t id = ids.at(f);
    image.function_records_[id] =
        FunctionRecord{f->name,
                       id,
                       image.symbols_.at(f->name).addr,
                       f->size_bytes(),
                       f->has_prologue,
                       f->frame_bytes};
  }

  // ---- encode code with fixups applied -----------------------------------
  for (const Function* f : ordered) {
    const std::uint32_t base = image.symbols_.at(f->name).addr;
    std::vector<Instruction> code = f->code; // patch a copy
    for (const Fixup& fixup : f->fixups) {
      if (fixup.index >= code.size()) {
        throw LinkError(f->name + ": fixup index out of range");
      }
      Instruction& instr = code[fixup.index];
      switch (fixup.kind) {
      case FixupKind::kBranch: {
        const auto it = f->labels.find(fixup.symbol);
        if (it == f->labels.end()) {
          throw LinkError(f->name + ": undefined label '" + fixup.symbol +
                          "'");
        }
        instr.imm = static_cast<std::int32_t>(it->second) -
                    static_cast<std::int32_t>(fixup.index);
        break;
      }
      case FixupKind::kCall: {
        const auto it = image.symbols_.find(fixup.symbol);
        if (it == image.symbols_.end() || !it->second.is_code) {
          throw LinkError(f->name + ": call to undefined function '" +
                          fixup.symbol + "'");
        }
        const std::int64_t delta =
            static_cast<std::int64_t>(it->second.addr) -
            static_cast<std::int64_t>(base + 4 * fixup.index);
        if (delta % 4 != 0 || delta / 4 < kDisp24Min ||
            delta / 4 > kDisp24Max) {
          throw LinkError(f->name + ": call displacement out of range");
        }
        instr.imm = static_cast<std::int32_t>(delta / 4);
        break;
      }
      case FixupKind::kHi19:
      case FixupKind::kLo13: {
        const auto it = image.symbols_.find(fixup.symbol);
        if (it == image.symbols_.end()) {
          throw LinkError(f->name + ": undefined symbol '" + fixup.symbol +
                          "'");
        }
        const std::uint32_t target =
            it->second.addr + static_cast<std::uint32_t>(fixup.addend);
        const HiLo parts = split_hi_lo(target);
        instr.imm = static_cast<std::int32_t>(
            fixup.kind == FixupKind::kHi19 ? parts.hi : parts.lo);
        break;
      }
      }
    }

    LinkedImage::Section section;
    section.addr = base;
    section.bytes.reserve(code.size() * 4);
    for (const Instruction& instr : code) {
      const std::uint32_t word = encode(instr);
      section.bytes.push_back(static_cast<std::uint8_t>(word >> 24));
      section.bytes.push_back(static_cast<std::uint8_t>(word >> 16));
      section.bytes.push_back(static_cast<std::uint8_t>(word >> 8));
      section.bytes.push_back(static_cast<std::uint8_t>(word));
    }
    image.sections_.push_back(std::move(section));
  }

  // ---- data sections -------------------------------------------------------
  for (const DataObject& d : program.data) {
    LinkedImage::Section section;
    section.addr = image.symbols_.at(d.name).addr;
    section.bytes = d.init;
    section.bytes.resize(d.size, 0);
    image.sections_.push_back(std::move(section));
  }

  // ---- entry ----------------------------------------------------------------
  const auto entry_it = image.symbols_.find(program.entry);
  if (entry_it == image.symbols_.end() || !entry_it->second.is_code) {
    throw LinkError("entry function '" + program.entry + "' not found");
  }
  image.entry_addr_ = entry_it->second.addr;
  return image;
}

} // namespace proxima::isa
