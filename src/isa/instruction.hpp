// Instruction word: decoded form, binary encoding, and disassembly.
//
// Encodings (32-bit big-endian words):
//   R: op[31:24] rd[23:19] rs1[18:14] rs2[13:9] zero[8:0]
//   I: op[31:24] rd[23:19] rs1[18:14] simm14[13:0]
//   B: op[31:24] disp24[23:0]   (signed word displacement / raw imm24)
//   H: op[31:24] rd[23:19] imm19[18:0]  (rd = imm19 << 13)
//
// Code is stored in guest memory as encoded words; the DSR runtime moves
// functions as opaque byte ranges, exactly like the real relocation loop.
#pragma once

#include "opcode.hpp"
#include "registers.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>

namespace proxima::isa {

class DecodeError : public std::runtime_error {
public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  /// I-form: simm14 (sign-extended). B-form: disp24 (sign-extended, in
  /// words for branches/call; raw id for ipoint). H-form: imm19 (raw).
  std::int32_t imm = 0;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// Encode to a 32-bit instruction word.  Throws DecodeError if a field is
/// out of range for the opcode's format (e.g. simm14 overflow) — the
/// assembler relies on this to reject unreachable branch targets.
std::uint32_t encode(const Instruction& instr);

/// Decode a 32-bit word.  Throws DecodeError on an invalid opcode.
Instruction decode(std::uint32_t word);

/// Human-readable rendering, e.g. "add %o0, %o1, %o2" or "call -12".
std::string disassemble(const Instruction& instr);

// Convenience constructors used by the builder and the DSR pass.

inline Instruction make_r(Opcode op, std::uint8_t rd, std::uint8_t rs1,
                          std::uint8_t rs2) {
  return Instruction{op, rd, rs1, rs2, 0};
}

inline Instruction make_i(Opcode op, std::uint8_t rd, std::uint8_t rs1,
                          std::int32_t simm14) {
  return Instruction{op, rd, rs1, 0, simm14};
}

inline Instruction make_b(Opcode op, std::int32_t disp24) {
  return Instruction{op, 0, 0, 0, disp24};
}

inline Instruction make_sethi(std::uint8_t rd, std::uint32_t imm19) {
  return Instruction{Opcode::kSethi, rd, 0, 0,
                     static_cast<std::int32_t>(imm19)};
}

/// Range limits implied by the formats.
inline constexpr std::int32_t kSimm14Min = -(1 << 13);
inline constexpr std::int32_t kSimm14Max = (1 << 13) - 1;
inline constexpr std::int32_t kDisp24Min = -(1 << 23);
inline constexpr std::int32_t kDisp24Max = (1 << 23) - 1;
inline constexpr std::uint32_t kImm19Max = (1U << 19) - 1;

/// Split a 32-bit constant into the SETHI/ORLO pair: hi = value >> 13,
/// lo = value & 0x1fff.
struct HiLo {
  std::uint32_t hi;
  std::uint32_t lo;
};
constexpr HiLo split_hi_lo(std::uint32_t value) {
  return HiLo{value >> 13, value & 0x1fffU};
}

} // namespace proxima::isa
