// Text assembler for the mini-SPARC ISA.
//
// The builder API (builder.hpp) is the primary authoring path; this text
// front-end exists for tooling, tests and examples that want to keep
// guest programs as readable assembly.  Syntax follows SPARC conventions:
//
//   ! line comment
//   .global main            ! entry point (defaults to "main")
//   .data table, 1024, 64   ! name, size, align
//   .word 1, 2, 3           ! initial contents of the last .data object
//
//   main:                   ! function definition
//     save %sp, -96, %sp    ! prologue (tracked for DSR)
//     ld [%l0+4], %o0
//     add %o0, %o1, %o2
//     sethi %hi(table), %g1
//     or %g1, %lo(table), %g1
//     call helper
//     cmp %o0, 7            ! subcc %o0, 7, %g0
//     be done
//     nop
//   done:
//     restore
//     retl                  ! jmpl %o7+4, %g0
//
// Labels are function-local; `call` targets and %hi/%lo arguments are
// global symbols, resolved at link time.
#pragma once

#include "program.hpp"

#include <stdexcept>
#include <string>
#include <string_view>

namespace proxima::isa {

class AsmError : public std::runtime_error {
public:
  AsmError(std::size_t line, const std::string& what)
      : std::runtime_error("asm line " + std::to_string(line) + ": " + what),
        line_number(line) {}
  std::size_t line_number;
};

/// Assemble a whole translation unit into a Program.
Program assemble(std::string_view source);

} // namespace proxima::isa
