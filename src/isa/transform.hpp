// Instruction-level program surgery.
//
// Replaces or prepends instruction sequences inside a Function while
// remapping labels and fixups, so transformations compose safely before
// link time.  Used by the DSR compiler pass (call indirection, prologue
// rewriting) and by the RVS-style instrumenter (ipoint insertion).
#pragma once

#include "program.hpp"

#include <set>
#include <vector>

namespace proxima::isa {

/// One pending edit: the instruction at `index` is replaced by `code`
/// (when `keep_original` is false) or `code` is inserted *before* it
/// (when `keep_original` is true).  `fixups` carry indices relative to the
/// start of `code`.
struct CodeEdit {
  std::size_t index = 0;
  std::vector<Instruction> code;
  std::vector<Fixup> fixups;
  bool keep_original = false;
};

/// Apply edits (at distinct indices) to `function`.  Fixups listed in
/// `consumed_fixups` (indices into function.fixups) are dropped; all others
/// are index-remapped, as are labels and the prologue index.
void apply_edits(Function& function, std::vector<CodeEdit> edits,
                 const std::set<std::size_t>& consumed_fixups = {});

} // namespace proxima::isa
