#include "builder.hpp"

namespace proxima::isa {

FunctionBuilder::FunctionBuilder(std::string name) {
  function_.name = std::move(name);
}

FunctionBuilder& FunctionBuilder::prologue(std::uint32_t frame_bytes) {
  if (frame_bytes < 64 || frame_bytes % 8 != 0) {
    throw BuildError(function_.name +
                     ": frame must be >= 64 bytes (window save area) and "
                     "8-byte aligned");
  }
  if (function_.has_prologue) {
    throw BuildError(function_.name + ": duplicate prologue");
  }
  function_.has_prologue = true;
  function_.frame_bytes = frame_bytes;
  function_.prologue_index = function_.code.size();
  return emit(make_i(Opcode::kSave, kSp, kSp,
                     -static_cast<std::int32_t>(frame_bytes)));
}

FunctionBuilder& FunctionBuilder::epilogue() {
  emit(make_r(Opcode::kRestore, kG0, kG0, kG0));
  return emit(make_i(Opcode::kJmpl, kG0, kO7, 4));
}

FunctionBuilder& FunctionBuilder::ret_leaf() {
  return emit(make_i(Opcode::kJmpl, kG0, kO7, 4));
}

FunctionBuilder& FunctionBuilder::label(const std::string& name) {
  if (function_.labels.contains(name)) {
    throw BuildError(function_.name + ": duplicate label '" + name + "'");
  }
  function_.labels.emplace(name, function_.code.size());
  return *this;
}

FunctionBuilder& FunctionBuilder::call(const std::string& function_name) {
  function_.fixups.push_back(
      Fixup{function_.code.size(), FixupKind::kCall, function_name, 0});
  return emit(make_b(Opcode::kCall, 0));
}

FunctionBuilder& FunctionBuilder::branch(Opcode branch_op,
                                         const std::string& target) {
  if (!is_branch(branch_op)) {
    throw BuildError(function_.name + ": not a branch opcode");
  }
  function_.fixups.push_back(
      Fixup{function_.code.size(), FixupKind::kBranch, target, 0});
  return emit(make_b(branch_op, 0));
}

FunctionBuilder& FunctionBuilder::li(std::uint8_t rd, std::int32_t value) {
  if (value >= kSimm14Min && value <= kSimm14Max) {
    return opi(Opcode::kAddi, rd, kG0, value);
  }
  const HiLo parts = split_hi_lo(static_cast<std::uint32_t>(value));
  emit(make_sethi(rd, parts.hi));
  if (parts.lo != 0) {
    opi(Opcode::kOrlo, rd, rd, static_cast<std::int32_t>(parts.lo));
  }
  return *this;
}

FunctionBuilder& FunctionBuilder::load_address(std::uint8_t rd,
                                               const std::string& symbol,
                                               std::int32_t addend) {
  function_.fixups.push_back(
      Fixup{function_.code.size(), FixupKind::kHi19, symbol, addend});
  emit(make_sethi(rd, 0));
  function_.fixups.push_back(
      Fixup{function_.code.size(), FixupKind::kLo13, symbol, addend});
  return opi(Opcode::kOrlo, rd, rd, 0);
}

FunctionBuilder& FunctionBuilder::mov(std::uint8_t rd, std::uint8_t rs) {
  return op3(Opcode::kOr, rd, rs, kG0);
}

FunctionBuilder& FunctionBuilder::emit(const Instruction& instr) {
  if (built_) {
    throw BuildError(function_.name + ": builder already finalised");
  }
  function_.code.push_back(instr);
  return *this;
}

FunctionBuilder& FunctionBuilder::op3(Opcode op, std::uint8_t rd,
                                      std::uint8_t rs1, std::uint8_t rs2) {
  return emit(make_r(op, rd, rs1, rs2));
}

FunctionBuilder& FunctionBuilder::opi(Opcode op, std::uint8_t rd,
                                      std::uint8_t rs1, std::int32_t imm) {
  return emit(make_i(op, rd, rs1, imm));
}

Function FunctionBuilder::build() {
  if (built_) {
    throw BuildError(function_.name + ": build() called twice");
  }
  // Verify every local branch target exists now, so errors point at the
  // function author rather than at link time.
  for (const Fixup& fixup : function_.fixups) {
    if (fixup.kind == FixupKind::kBranch &&
        !function_.labels.contains(fixup.symbol)) {
      throw BuildError(function_.name + ": undefined label '" + fixup.symbol +
                       "'");
    }
  }
  built_ = true;
  return std::move(function_);
}

} // namespace proxima::isa
