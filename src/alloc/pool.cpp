#include "pool.hpp"

#include <algorithm>

namespace proxima::alloc {

PageAllocator::PageAllocator(Region region, rng::RandomSource& random)
    : region_(region), random_(random) {
  if (region_.base % kPageBytes != 0 || region_.size % kPageBytes != 0) {
    throw AllocError("pool region must be page-aligned");
  }
  if (region_.size == 0) {
    throw AllocError("pool region must not be empty");
  }
  total_pages_ = region_.size / kPageBytes;
  free_.push_back(Extent{0, total_pages_});
  free_count_ = total_pages_;
}

std::uint32_t PageAllocator::take_pages(std::uint32_t pages,
                                        std::uint32_t align_pages) {
  if (pages == 0) {
    throw AllocError("zero-page allocation");
  }
  if (align_pages == 0) {
    align_pages = 1;
  }
  const std::uint32_t total = total_pages_;
  if (pages > free_count_ || align_pages > total) {
    throw AllocError("pool exhausted");
  }
  // Random first-fit over aligned candidate bases, wrapping once: the
  // winner is the aligned free run whose candidate index is cyclically
  // closest to the random start — the same run a linear probe over
  // candidates (start, start+1, ... mod candidates) finds, computed per
  // extent instead of per page.  The region base is page-aligned;
  // candidates are relative to it, so a way-aligned region yields
  // way-aligned chunks.
  const std::uint32_t candidates = total / align_pages;
  const std::uint32_t start = random_.next_below(candidates);
  bool found = false;
  std::uint32_t best_distance = 0;
  std::uint32_t best_candidate = 0;
  std::size_t best_extent = 0;
  for (std::size_t i = 0; i < free_.size(); ++i) {
    const Extent& extent = free_[i];
    if (extent.count < pages) {
      continue;
    }
    // Candidate indices whose aligned run fits inside this extent; the
    // probe never visits indices >= candidates, so clamp there too.
    const std::uint32_t lo = (extent.first + align_pages - 1) / align_pages;
    std::uint32_t hi = (extent.first + extent.count - pages) / align_pages;
    if (hi >= candidates) {
      hi = candidates - 1;
    }
    if (lo > hi) {
      continue;
    }
    std::uint32_t candidate;
    std::uint32_t distance;
    if (hi >= start) {
      candidate = std::max(lo, start);
      distance = candidate - start;
    } else {
      candidate = lo; // only reachable after the probe wraps
      distance = lo + (candidates - start);
    }
    if (!found || distance < best_distance) {
      found = true;
      best_distance = distance;
      best_candidate = candidate;
      best_extent = i;
    }
  }
  if (!found) {
    throw AllocError("pool fragmented: no contiguous run of requested size");
  }
  const std::uint32_t first = best_candidate * align_pages;
  Extent& extent = free_[best_extent];
  const std::uint32_t left = first - extent.first;
  const std::uint32_t right = extent.first + extent.count - (first + pages);
  if (left == 0 && right == 0) {
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best_extent));
  } else if (left == 0) {
    extent.first = first + pages;
    extent.count = right;
  } else if (right == 0) {
    extent.count = left;
  } else {
    extent.count = left;
    free_.insert(free_.begin() + static_cast<std::ptrdiff_t>(best_extent) + 1,
                 Extent{first + pages, right});
  }
  free_count_ -= pages;
  return region_.base + first * kPageBytes;
}

void PageAllocator::release(std::uint32_t addr, std::uint32_t pages) {
  if (addr < region_.base || addr % kPageBytes != 0) {
    throw AllocError("release of address not owned by this pool");
  }
  const std::uint32_t first = (addr - region_.base) / kPageBytes;
  if (first + pages > total_pages_) {
    throw AllocError("release beyond pool region");
  }
  if (pages == 0) {
    return;
  }
  const auto it = std::lower_bound(
      free_.begin(), free_.end(), first,
      [](const Extent& e, std::uint32_t value) { return e.first < value; });
  // Any overlap with a free extent means some page in the range is already
  // free — reject before mutating, so a bad release leaves the pool intact.
  if (it != free_.begin()) {
    const Extent& prev = *(it - 1);
    if (prev.first + prev.count > first) {
      throw AllocError("double release of pool page");
    }
  }
  if (it != free_.end() && it->first < first + pages) {
    throw AllocError("double release of pool page");
  }
  const bool merge_prev =
      it != free_.begin() && (it - 1)->first + (it - 1)->count == first;
  const bool merge_next = it != free_.end() && it->first == first + pages;
  if (merge_prev && merge_next) {
    (it - 1)->count += pages + it->count;
    free_.erase(it);
  } else if (merge_prev) {
    (it - 1)->count += pages;
  } else if (merge_next) {
    it->first = first;
    it->count += pages;
  } else {
    free_.insert(it, Extent{first, pages});
  }
  free_count_ += pages;
}

void PageAllocator::reset() {
  free_.clear();
  free_.push_back(Extent{0, total_pages_});
  free_count_ = total_pages_;
}

bool PageAllocator::page_free(std::uint32_t index) const {
  if (index >= total_pages_) {
    throw std::out_of_range("PageAllocator::page_free: index out of range");
  }
  const auto it = std::upper_bound(
      free_.begin(), free_.end(), index,
      [](std::uint32_t value, const Extent& e) { return value < e.first; });
  if (it == free_.begin()) {
    return false;
  }
  const Extent& extent = *(it - 1);
  return index < extent.first + extent.count;
}

RandomObjectPool::RandomObjectPool(PageAllocator& pages,
                                   rng::RandomSource& random,
                                   std::uint32_t way_bytes,
                                   std::uint32_t alignment,
                                   std::uint32_t chunk_align_bytes)
    : pages_(pages), random_(random), way_bytes_(way_bytes),
      alignment_(alignment),
      chunk_align_bytes_(chunk_align_bytes == 0 ? way_bytes
                                                : chunk_align_bytes) {
  if (alignment_ == 0 || (alignment_ & (alignment_ - 1)) != 0) {
    throw AllocError("alignment must be a power of two");
  }
  if (way_bytes_ == 0 || way_bytes_ % alignment_ != 0) {
    throw AllocError("way size must be a non-zero multiple of the alignment");
  }
}

RandomObjectPool::Allocation RandomObjectPool::allocate(std::uint32_t size) {
  if (size == 0) {
    throw AllocError("zero-byte allocation");
  }
  // Reserve enough for the object at ANY offset in [0, way_bytes).  The
  // chunk base is aligned to the way size so that the random offset alone
  // decides the object's position within the cache way (Section III.B.3:
  // "the starting offset is between zero and the maximum way size to
  // ensure that the memory object can be mapped in any cache line inside
  // a cache way").
  const std::uint32_t span = way_bytes_ + size;
  const std::uint32_t chunk_pages =
      (span + PageAllocator::kPageBytes - 1) / PageAllocator::kPageBytes;
  const std::uint32_t align_pages = std::max<std::uint32_t>(
      1, chunk_align_bytes_ / PageAllocator::kPageBytes);
  const std::uint32_t chunk = pages_.take_pages(chunk_pages, align_pages);
  const std::uint32_t offset = random_.next_offset(way_bytes_, alignment_);
  Allocation allocation{chunk + offset, chunk, chunk_pages, offset};
  live_.push_back(allocation);
  ++stats_.allocations;
  stats_.bytes_requested += size;
  stats_.bytes_reserved +=
      static_cast<std::uint64_t>(chunk_pages) * PageAllocator::kPageBytes;
  return allocation;
}

void RandomObjectPool::free(const Allocation& allocation) {
  const auto it =
      std::find_if(live_.begin(), live_.end(), [&](const Allocation& a) {
        return a.chunk_base == allocation.chunk_base;
      });
  if (it == live_.end()) {
    throw AllocError("free of allocation not owned by this pool");
  }
  pages_.release(it->chunk_base, it->chunk_pages);
  live_.erase(it);
}

void RandomObjectPool::reset() {
  for (const Allocation& allocation : live_) {
    pages_.release(allocation.chunk_base, allocation.chunk_pages);
  }
  live_.clear();
}

} // namespace proxima::alloc
