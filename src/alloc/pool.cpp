#include "pool.hpp"

#include <algorithm>

namespace proxima::alloc {

PageAllocator::PageAllocator(Region region, rng::RandomSource& random)
    : region_(region), random_(random) {
  if (region_.base % kPageBytes != 0 || region_.size % kPageBytes != 0) {
    throw AllocError("pool region must be page-aligned");
  }
  if (region_.size == 0) {
    throw AllocError("pool region must not be empty");
  }
  used_.assign(region_.size / kPageBytes, false);
  free_count_ = static_cast<std::uint32_t>(used_.size());
}

std::uint32_t PageAllocator::take_pages(std::uint32_t pages,
                                        std::uint32_t align_pages) {
  if (pages == 0) {
    throw AllocError("zero-page allocation");
  }
  if (align_pages == 0) {
    align_pages = 1;
  }
  const std::uint32_t total = total_pages();
  if (pages > free_count_ || align_pages > total) {
    throw AllocError("pool exhausted");
  }
  // Random first-fit over aligned candidate bases, wrapping once.  The
  // region base is page-aligned; candidates are relative to it, so a
  // way-aligned region yields way-aligned chunks.
  const std::uint32_t candidates = total / align_pages;
  const std::uint32_t start = random_.next_below(candidates);
  for (std::uint32_t step = 0; step < candidates; ++step) {
    const std::uint32_t first = ((start + step) % candidates) * align_pages;
    if (first + pages > total) {
      continue; // must not wrap the region boundary
    }
    bool free_run = true;
    for (std::uint32_t p = first; p < first + pages; ++p) {
      if (used_[p]) {
        free_run = false;
        break;
      }
    }
    if (!free_run) {
      continue;
    }
    for (std::uint32_t p = first; p < first + pages; ++p) {
      used_[p] = true;
    }
    free_count_ -= pages;
    return region_.base + first * kPageBytes;
  }
  throw AllocError("pool fragmented: no contiguous run of requested size");
}

void PageAllocator::release(std::uint32_t addr, std::uint32_t pages) {
  if (addr < region_.base || addr % kPageBytes != 0) {
    throw AllocError("release of address not owned by this pool");
  }
  const std::uint32_t first = (addr - region_.base) / kPageBytes;
  if (first + pages > total_pages()) {
    throw AllocError("release beyond pool region");
  }
  for (std::uint32_t p = first; p < first + pages; ++p) {
    if (!used_[p]) {
      throw AllocError("double release of pool page");
    }
    used_[p] = false;
  }
  free_count_ += pages;
}

void PageAllocator::reset() {
  std::fill(used_.begin(), used_.end(), false);
  free_count_ = total_pages();
}

RandomObjectPool::RandomObjectPool(PageAllocator& pages,
                                   rng::RandomSource& random,
                                   std::uint32_t way_bytes,
                                   std::uint32_t alignment,
                                   std::uint32_t chunk_align_bytes)
    : pages_(pages), random_(random), way_bytes_(way_bytes),
      alignment_(alignment),
      chunk_align_bytes_(chunk_align_bytes == 0 ? way_bytes
                                                : chunk_align_bytes) {
  if (alignment_ == 0 || (alignment_ & (alignment_ - 1)) != 0) {
    throw AllocError("alignment must be a power of two");
  }
  if (way_bytes_ == 0 || way_bytes_ % alignment_ != 0) {
    throw AllocError("way size must be a non-zero multiple of the alignment");
  }
}

RandomObjectPool::Allocation RandomObjectPool::allocate(std::uint32_t size) {
  if (size == 0) {
    throw AllocError("zero-byte allocation");
  }
  // Reserve enough for the object at ANY offset in [0, way_bytes).  The
  // chunk base is aligned to the way size so that the random offset alone
  // decides the object's position within the cache way (Section III.B.3:
  // "the starting offset is between zero and the maximum way size to
  // ensure that the memory object can be mapped in any cache line inside
  // a cache way").
  const std::uint32_t span = way_bytes_ + size;
  const std::uint32_t chunk_pages =
      (span + PageAllocator::kPageBytes - 1) / PageAllocator::kPageBytes;
  const std::uint32_t align_pages = std::max<std::uint32_t>(
      1, chunk_align_bytes_ / PageAllocator::kPageBytes);
  const std::uint32_t chunk = pages_.take_pages(chunk_pages, align_pages);
  const std::uint32_t offset = random_.next_offset(way_bytes_, alignment_);
  Allocation allocation{chunk + offset, chunk, chunk_pages, offset};
  live_.push_back(allocation);
  ++stats_.allocations;
  stats_.bytes_requested += size;
  stats_.bytes_reserved +=
      static_cast<std::uint64_t>(chunk_pages) * PageAllocator::kPageBytes;
  return allocation;
}

void RandomObjectPool::free(const Allocation& allocation) {
  const auto it =
      std::find_if(live_.begin(), live_.end(), [&](const Allocation& a) {
        return a.chunk_base == allocation.chunk_base;
      });
  if (it == live_.end()) {
    throw AllocError("free of allocation not owned by this pool");
  }
  pages_.release(it->chunk_base, it->chunk_pages);
  live_.erase(it);
}

void RandomObjectPool::reset() {
  for (const Allocation& allocation : live_) {
    pages_.release(allocation.chunk_base, allocation.chunk_pages);
  }
  live_.clear();
}

} // namespace proxima::alloc
