// HeapLayers-style memory pools for the DSR runtime.
//
// The paper's runtime places software objects "inside memory chunks
// obtained using a memory allocator based on HeapLayers [11]", with the
// starting offset "between zero and the maximum way size to ensure that the
// memory object can be mapped in any cache line inside a cache way"
// (Section III.B.3), and uses "two separate memory pools for code and data
// ... comprised by a diverse set of pages, which effectively randomises
// both Instruction and Data TLBs" (Section III.B.5, after DieHard [5]).
//
// Two composable layers reproduce this:
//   PageAllocator     — page-granular chunks at random positions inside a
//                       guest region (page diversity -> TLB randomisation)
//   RandomObjectPool  — objects placed at a random aligned offset within
//                       [0, way_bytes) inside a fresh chunk (cache-layout
//                       randomisation at every cache level whose way size
//                       divides way_bytes)
#pragma once

#include "rng/random_source.hpp"

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace proxima::alloc {

class AllocError : public std::runtime_error {
public:
  explicit AllocError(const std::string& what) : std::runtime_error(what) {}
};

/// A region of guest address space owned by a pool.
struct Region {
  std::uint32_t base = 0;
  std::uint32_t size = 0;
};

/// Page-granular allocator with randomised placement (DieHard-flavoured):
/// each request starts from a random candidate position, so successive
/// chunks land on unpredictable, diverse pages.
///
/// The free space is kept as a sorted free-extent list rather than a page
/// bitmap: take_pages picks, among all free runs, the aligned base closest
/// (cyclically) to the random start — exactly the run the old bitmap probe
/// would have found, so placements are bit-identical for the same random
/// stream — and reset() is O(1) instead of O(pages).  This is what makes
/// the per-reboot DSR pool reset disappear from the reseed profile.
class PageAllocator {
public:
  static constexpr std::uint32_t kPageBytes = 4096;

  PageAllocator(Region region, rng::RandomSource& random);

  /// Allocate `pages` contiguous pages whose base is aligned to
  /// `align_pages` pages; returns the base address.  Throws AllocError
  /// when no free run exists.
  std::uint32_t take_pages(std::uint32_t pages, std::uint32_t align_pages = 1);

  /// Return a chunk previously obtained from take_pages.
  void release(std::uint32_t addr, std::uint32_t pages);

  /// Release everything (partition reboot resets the pools).
  void reset();

  std::uint32_t total_pages() const noexcept { return total_pages_; }
  std::uint32_t free_pages() const noexcept { return free_count_; }
  bool page_free(std::uint32_t index) const;
  const Region& region() const noexcept { return region_; }

private:
  /// A maximal run of free pages [first, first + count), page indices
  /// relative to the region base.
  struct Extent {
    std::uint32_t first = 0;
    std::uint32_t count = 0;
  };

  Region region_;
  rng::RandomSource& random_;
  std::vector<Extent> free_; // sorted by first, never adjacent
  std::uint32_t total_pages_ = 0;
  std::uint32_t free_count_ = 0;
};

/// DSR object pool: every allocation sits at `chunk + offset` where offset
/// is a uniformly random multiple of `alignment` in [0, way_bytes).
class RandomObjectPool {
public:
  struct Allocation {
    std::uint32_t addr = 0;       // where the object starts
    std::uint32_t chunk_base = 0; // page-aligned chunk backing it
    std::uint32_t chunk_pages = 0;
    std::uint32_t offset = 0;     // addr - chunk_base
  };

  struct Stats {
    std::uint64_t allocations = 0;
    std::uint64_t bytes_requested = 0;
    std::uint64_t bytes_reserved = 0; // including way-size slack
  };

  /// way_bytes: the random-offset range — the paper sets this to the L2 way
  /// size (32 KiB) so *all* cache levels get their layout randomised
  /// (Section III.B.4).  alignment: 8 (SPARC doubleword).
  /// chunk_align_bytes: chunk base alignment — the platform's *largest*
  /// way size, so the offset alone decides the object's position within
  /// every cache way (0 = use way_bytes).
  RandomObjectPool(PageAllocator& pages, rng::RandomSource& random,
                   std::uint32_t way_bytes, std::uint32_t alignment = 8,
                   std::uint32_t chunk_align_bytes = 0);

  Allocation allocate(std::uint32_t size);
  void free(const Allocation& allocation);

  /// Drop all outstanding chunks (pool reset between runs).
  void reset();

  const Stats& stats() const noexcept { return stats_; }
  std::uint32_t way_bytes() const noexcept { return way_bytes_; }
  std::uint32_t alignment() const noexcept { return alignment_; }

private:
  PageAllocator& pages_;
  rng::RandomSource& random_;
  std::uint32_t way_bytes_;
  std::uint32_t alignment_;
  std::uint32_t chunk_align_bytes_;
  Stats stats_;
  std::vector<Allocation> live_;
};

} // namespace proxima::alloc
