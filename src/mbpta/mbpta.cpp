#include "mbpta.hpp"

#include <cmath>
#include <stdexcept>

namespace proxima::mbpta {

ConvergenceController::ConvergenceController()
    : ConvergenceController(Config{}) {}

ConvergenceController::ConvergenceController(const Config& config)
    : config_(config) {
  if (config_.target_exceedance <= 0.0 || config_.target_exceedance >= 1.0) {
    throw std::invalid_argument(
        "ConvergenceController: target_exceedance must be in (0,1)");
  }
  const bool block_maxima =
      config_.mbpta.method == TailMethod::kBlockMaximaGumbel ||
      config_.mbpta.method == TailMethod::kBlockMaximaGev;
  if (block_maxima &&
      config_.target_exceedance *
              static_cast<double>(config_.mbpta.block_size) >=
          1.0) {
    // PwcetModel::pwcet would throw at the first estimate: the target is a
    // *body* probability for this block size, so no campaign length can
    // ever answer it.
    throw std::invalid_argument(
        "ConvergenceController: target_exceedance is outside the "
        "block-maxima model's valid range (need target < 1/block_size)");
  }
}

MbptaAnalysis analyse(std::span<const double> samples,
                      const MbptaConfig& config) {
  MbptaAnalysis analysis;
  analysis.config = config;
  analysis.summary = summarise(samples);
  analysis.iid = check_iid(samples, config.alpha, config.lb_lags);
  switch (config.method) {
  case TailMethod::kBlockMaximaGumbel:
    analysis.model =
        PwcetModel::fit_block_maxima(samples, config.block_size, false);
    break;
  case TailMethod::kBlockMaximaGev:
    analysis.model =
        PwcetModel::fit_block_maxima(samples, config.block_size, true);
    break;
  case TailMethod::kPotGpd:
    analysis.model =
        PwcetModel::fit_pot(samples, config.pot_threshold_quantile);
    break;
  }
  return analysis;
}

bool ConvergenceController::add_batch(std::span<const double> batch) {
  samples_.insert(samples_.end(), batch.begin(), batch.end());
  const auto done = [this](bool result) {
    if (!result && !converged() && config_.max_samples != 0 &&
        samples_.size() >= config_.max_samples) {
      capped_ = true; // budget exhausted without convergence
      return true;
    }
    return result;
  };
  if (samples_.size() < config_.min_samples) {
    return done(false);
  }
  MbptaAnalysis analysis;
  try {
    analysis = analyse(samples_, config_.mbpta);
  } catch (const std::invalid_argument&) {
    return done(false); // not enough tail points yet
  }
  if (!analysis.applicable()) {
    stable_count_ = 0;
    estimates_.push_back(std::nan(""));
    return done(false);
  }
  const double estimate = analysis.pwcet(config_.target_exceedance);
  if (!estimates_.empty() && !std::isnan(estimates_.back())) {
    const double previous = estimates_.back();
    const double rel_change =
        previous == 0.0 ? 0.0 : std::fabs(estimate - previous) / previous;
    if (rel_change <= config_.epsilon) {
      ++stable_count_;
    } else {
      stable_count_ = 0;
    }
  }
  estimates_.push_back(estimate);
  if (converged()) {
    return true;
  }
  return done(false);
}

} // namespace proxima::mbpta
