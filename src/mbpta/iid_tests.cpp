#include "iid_tests.hpp"

#include "descriptive.hpp"
#include "stats_math.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace proxima::mbpta {

LjungBoxResult ljung_box(std::span<const double> samples,
                         std::uint32_t lags) {
  const std::size_t n = samples.size();
  if (lags == 0) {
    throw std::invalid_argument("ljung_box needs at least one lag");
  }
  if (n <= lags + 1) {
    throw std::invalid_argument("ljung_box: series shorter than lag window");
  }
  LjungBoxResult result;
  result.lags = lags;
  double q = 0.0;
  for (std::uint32_t k = 1; k <= lags; ++k) {
    const double rho = autocorrelation(samples, k);
    q += rho * rho / static_cast<double>(n - k);
  }
  q *= static_cast<double>(n) * (static_cast<double>(n) + 2.0);
  result.statistic = q;
  result.p_value = 1.0 - chi_square_cdf(q, static_cast<double>(lags));
  return result;
}

KsResult ks_two_sample(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("ks_two_sample: empty sample");
  }
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  double d = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    const double xa = sa[ia];
    const double xb = sb[ib];
    if (xa <= xb) {
      ++ia;
    }
    if (xb <= xa) {
      ++ib;
    }
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    d = std::max(d, std::fabs(fa - fb));
  }

  KsResult result;
  result.statistic = d;
  // Asymptotic p-value with the small-sample correction (Stephens 1970).
  const double ne = na * nb / (na + nb);
  const double sqrt_ne = std::sqrt(ne);
  const double lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
  result.p_value = ks_survival(lambda);
  return result;
}

IidVerdict check_iid(std::span<const double> samples, double alpha,
                     std::uint32_t lb_lags) {
  if (samples.size() < 2 * (lb_lags + 2)) {
    throw std::invalid_argument("check_iid: too few samples");
  }
  IidVerdict verdict;
  verdict.alpha = alpha;
  verdict.independence = ljung_box(samples, lb_lags);
  const std::size_t half = samples.size() / 2;
  verdict.identical_distribution =
      ks_two_sample(samples.subspan(0, half), samples.subspan(half));
  return verdict;
}

} // namespace proxima::mbpta
