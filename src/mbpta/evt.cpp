#include "evt.hpp"

#include "descriptive.hpp"
#include "stats_math.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace proxima::mbpta {

namespace {

constexpr double kEulerGamma = 0.57721566490153286;

/// First three sample L-moments (Hosking's unbiased estimators).
struct LMoments {
  double l1 = 0.0;
  double l2 = 0.0;
  double l3 = 0.0;
};

LMoments l_moments(std::span<const double> samples) {
  if (samples.size() < 3) {
    throw std::invalid_argument("L-moments need at least 3 points");
  }
  std::vector<double> x(samples.begin(), samples.end());
  std::sort(x.begin(), x.end());
  const double n = static_cast<double>(x.size());
  double b0 = 0.0;
  double b1 = 0.0;
  double b2 = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double di = static_cast<double>(i); // 0-based: i = rank-1
    b0 += x[i];
    b1 += di * x[i];
    b2 += di * (di - 1.0) * x[i];
  }
  b0 /= n;
  b1 /= n * (n - 1.0);
  b2 /= n * (n - 1.0) * (n - 2.0);
  LMoments lm;
  lm.l1 = b0;
  lm.l2 = 2.0 * b1 - b0;
  lm.l3 = 6.0 * b2 - 6.0 * b1 + b0;
  return lm;
}

double gamma_fn(double x) { return std::exp(log_gamma(x)); }

void check_cumulative(double cumulative) {
  if (cumulative <= 0.0 || cumulative >= 1.0) {
    throw std::invalid_argument("cumulative probability must be in (0,1)");
  }
}

} // namespace

double GumbelFit::quantile(double cumulative) const {
  check_cumulative(cumulative);
  return location - scale * std::log(-std::log(cumulative));
}

double GevFit::quantile(double cumulative) const {
  check_cumulative(cumulative);
  const double y = -std::log(cumulative);
  if (std::fabs(shape) < 1e-9) {
    return location - scale * std::log(y);
  }
  return location + scale * (std::pow(y, -shape) - 1.0) / shape;
}

double GpdFit::quantile_exceedance(double p) const {
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("exceedance probability must be in (0,1]");
  }
  if (std::fabs(shape) < 1e-9) {
    return -scale * std::log(p);
  }
  return scale * (std::pow(p, -shape) - 1.0) / shape;
}

GumbelFit fit_gumbel_lmoments(std::span<const double> maxima) {
  const LMoments lm = l_moments(maxima);
  GumbelFit fit;
  fit.scale = lm.l2 / std::log(2.0);
  if (fit.scale < 0.0) {
    fit.scale = 0.0; // degenerate (near-constant) data
  }
  fit.location = lm.l1 - kEulerGamma * fit.scale;
  return fit;
}

GevFit fit_gev_lmoments(std::span<const double> maxima) {
  const LMoments lm = l_moments(maxima);
  GevFit fit;
  if (lm.l2 <= 0.0) {
    // Degenerate sample: collapse to a point mass at the mean.
    fit.location = lm.l1;
    fit.scale = 0.0;
    fit.shape = 0.0;
    return fit;
  }
  const double t3 = lm.l3 / lm.l2;
  // Hosking's rational approximation for the GEV shape (his k = -xi).
  const double c = 2.0 / (3.0 + t3) - std::log(2.0) / std::log(3.0);
  const double k = 7.8590 * c + 2.9554 * c * c;
  if (std::fabs(k) < 1e-6) {
    const GumbelFit gumbel = fit_gumbel_lmoments(maxima);
    fit.location = gumbel.location;
    fit.scale = gumbel.scale;
    fit.shape = 0.0;
    return fit;
  }
  const double gamma_1k = gamma_fn(1.0 + k);
  fit.scale = lm.l2 * k / ((1.0 - std::pow(2.0, -k)) * gamma_1k);
  fit.location = lm.l1 - fit.scale * (1.0 - gamma_1k) / k;
  fit.shape = -k;
  return fit;
}

GpdFit fit_gpd_lmoments(std::span<const double> exceedances) {
  const LMoments lm = l_moments(exceedances);
  GpdFit fit;
  if (lm.l2 <= 0.0) {
    fit.scale = 0.0;
    fit.shape = 0.0;
    return fit;
  }
  const double k = lm.l1 / lm.l2 - 2.0; // Hosking's k = -xi
  fit.scale = lm.l1 * (1.0 + k);
  fit.shape = -k;
  return fit;
}

CvTestResult cv_exponentiality(std::span<const double> samples,
                               double threshold_quantile) {
  const double threshold = quantile(samples, threshold_quantile);
  const std::vector<double> tail = exceedances_over(samples, threshold);
  CvTestResult result;
  result.exceedances = tail.size();
  if (tail.size() < 3) {
    result.cv = 1.0;
    result.lower = 0.0;
    result.upper = 2.0;
    return result;
  }
  const Summary s = summarise(tail);
  result.cv = s.mean > 0.0 ? s.stddev / s.mean : 0.0;
  // Asymptotic acceptance band: CV of n exponential variates is ~1 with
  // standard error ~ 1/sqrt(n).
  const double half_width =
      1.96 / std::sqrt(static_cast<double>(tail.size()));
  result.lower = 1.0 - half_width;
  result.upper = 1.0 + half_width;
  return result;
}

PwcetModel PwcetModel::fit_block_maxima(std::span<const double> samples,
                                        std::uint32_t block_size,
                                        bool full_gev) {
  if (block_size == 0) {
    throw std::invalid_argument("block size must be positive");
  }
  const std::vector<double> maxima = block_maxima(samples, block_size);
  if (maxima.size() < 10) {
    throw std::invalid_argument(
        "too few blocks for an EVT fit: need >= 10 block maxima");
  }
  PwcetModel model;
  model.info_.method = full_gev ? TailMethod::kBlockMaximaGev
                                : TailMethod::kBlockMaximaGumbel;
  model.info_.samples = samples.size();
  model.info_.tail_points = maxima.size();
  model.info_.block_size = block_size;
  model.info_.gumbel = fit_gumbel_lmoments(maxima);
  model.info_.gev = fit_gev_lmoments(maxima);
  return model;
}

PwcetModel PwcetModel::fit_pot(std::span<const double> samples,
                               double threshold_quantile) {
  if (threshold_quantile <= 0.0 || threshold_quantile >= 1.0) {
    throw std::invalid_argument("threshold quantile must be in (0,1)");
  }
  const double threshold = quantile(samples, threshold_quantile);
  const std::vector<double> tail = exceedances_over(samples, threshold);
  if (tail.size() < 10) {
    throw std::invalid_argument(
        "too few exceedances for a POT fit: need >= 10");
  }
  PwcetModel model;
  model.info_.method = TailMethod::kPotGpd;
  model.info_.samples = samples.size();
  model.info_.tail_points = tail.size();
  model.info_.threshold = threshold;
  model.info_.exceed_rate =
      static_cast<double>(tail.size()) / static_cast<double>(samples.size());
  model.info_.gpd = fit_gpd_lmoments(tail);
  return model;
}

double PwcetModel::max_exceedance() const noexcept {
  switch (info_.method) {
  case TailMethod::kBlockMaximaGumbel:
  case TailMethod::kBlockMaximaGev:
    return info_.block_size == 0
               ? 1.0
               : 1.0 / static_cast<double>(info_.block_size);
  case TailMethod::kPotGpd:
    return 1.0;
  }
  return 1.0;
}

double PwcetModel::pwcet(double exceedance_per_run) const {
  if (exceedance_per_run <= 0.0 || exceedance_per_run >= 1.0) {
    throw std::invalid_argument("exceedance probability must be in (0,1)");
  }
  switch (info_.method) {
  case TailMethod::kBlockMaximaGumbel:
  case TailMethod::kBlockMaximaGev: {
    // P(block max > x) ~= block_size * p_run for small p.
    const double p_block =
        exceedance_per_run * static_cast<double>(info_.block_size);
    if (p_block >= 1.0) {
      // A per-block exceedance >= 1 is a *body* probability: the tail fit
      // has nothing to say about it, and clamping would return a body
      // quantile masquerading as a tail bound.
      throw std::invalid_argument(
          "exceedance probability outside the block-maxima model's valid "
          "range: need p < 1/block_size (see PwcetModel::max_exceedance)");
    }
    const double cumulative = 1.0 - p_block;
    return info_.method == TailMethod::kBlockMaximaGumbel
               ? info_.gumbel.quantile(cumulative)
               : info_.gev.quantile(cumulative);
  }
  case TailMethod::kPotGpd: {
    if (exceedance_per_run >= info_.exceed_rate) {
      // Inside the empirical range: the threshold itself suffices.
      return info_.threshold;
    }
    const double conditional = exceedance_per_run / info_.exceed_rate;
    return info_.threshold + info_.gpd.quantile_exceedance(conditional);
  }
  }
  return 0.0;
}

std::vector<std::pair<double, double>> PwcetModel::curve(int decades) const {
  std::vector<std::pair<double, double>> points;
  const double limit = max_exceedance();
  for (int d = 1; d <= decades; ++d) {
    const double p = std::pow(10.0, -d);
    if (p >= limit) {
      continue; // body probability: outside the tail model's range
    }
    points.emplace_back(pwcet(p), p);
  }
  return points;
}

} // namespace proxima::mbpta
