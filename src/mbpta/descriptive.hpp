// Descriptive statistics over execution-time samples.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace proxima::mbpta {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0; // the MOET / high-water mark
  double mean = 0.0;
  double variance = 0.0; // unbiased (n-1)
  double stddev = 0.0;
};

Summary summarise(std::span<const double> samples);

/// q-th empirical quantile (q in [0,1]), linear interpolation.
double quantile(std::span<const double> samples, double q);

/// Sample autocorrelation at `lag` (0 when the series is constant).
double autocorrelation(std::span<const double> samples, std::size_t lag);

/// Maxima of consecutive non-overlapping blocks; a trailing partial block
/// is dropped (standard EVT practice).
std::vector<double> block_maxima(std::span<const double> samples,
                                 std::size_t block_size);

/// Values strictly above `threshold` minus the threshold (POT exceedances).
std::vector<double> exceedances_over(std::span<const double> samples,
                                     double threshold);

} // namespace proxima::mbpta
