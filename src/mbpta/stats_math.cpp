#include "stats_math.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace proxima::mbpta {

double log_gamma(double x) {
  if (x <= 0.0) {
    throw std::domain_error("log_gamma requires x > 0");
  }
  // Lanczos, g = 7, 9 coefficients.
  static constexpr double kCoefficients[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection: Γ(x)Γ(1-x) = π / sin(πx)
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kCoefficients[0];
  for (int i = 1; i < 9; ++i) {
    sum += kCoefficients[i] / (z + i);
  }
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

namespace {

/// Series expansion, preferred for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-15) {
      break;
    }
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

/// Continued fraction (modified Lentz), preferred for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) {
      d = kTiny;
    }
    c = b + an / c;
    if (std::fabs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) {
      break;
    }
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

} // namespace

double regularized_gamma_p(double a, double x) {
  if (a <= 0.0 || x < 0.0) {
    throw std::domain_error("regularized_gamma_p requires a > 0, x >= 0");
  }
  if (x == 0.0) {
    return 0.0;
  }
  if (x < a + 1.0) {
    return gamma_p_series(a, x);
  }
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double chi_square_cdf(double x, double dof) {
  if (x <= 0.0) {
    return 0.0;
  }
  return regularized_gamma_p(dof / 2.0, x / 2.0);
}

double ks_survival(double lambda) {
  if (lambda <= 0.0) {
    return 1.0;
  }
  // The series converges extremely fast for lambda > ~0.3; below that the
  // survival probability is 1 to machine precision anyway.
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    if (term < 1e-18) {
      break;
    }
    sign = -sign;
  }
  const double q = 2.0 * sum;
  return q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

} // namespace proxima::mbpta
