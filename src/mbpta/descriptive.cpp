#include "descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace proxima::mbpta {

Summary summarise(std::span<const double> samples) {
  Summary summary;
  summary.count = samples.size();
  if (samples.empty()) {
    return summary;
  }
  summary.min = samples[0];
  summary.max = samples[0];
  double sum = 0.0;
  for (const double x : samples) {
    summary.min = std::min(summary.min, x);
    summary.max = std::max(summary.max, x);
    sum += x;
  }
  summary.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double ss = 0.0;
    for (const double x : samples) {
      const double d = x - summary.mean;
      ss += d * d;
    }
    summary.variance = ss / static_cast<double>(samples.size() - 1);
    summary.stddev = std::sqrt(summary.variance);
  }
  return summary;
}

double quantile(std::span<const double> samples, double q) {
  if (samples.empty()) {
    throw std::invalid_argument("quantile of empty sample");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile level outside [0,1]");
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double position = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(position);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = position - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double autocorrelation(std::span<const double> samples, std::size_t lag) {
  const std::size_t n = samples.size();
  if (lag >= n) {
    return 0.0;
  }
  double mean = 0.0;
  for (const double x : samples) {
    mean += x;
  }
  mean /= static_cast<double>(n);
  double denom = 0.0;
  for (const double x : samples) {
    denom += (x - mean) * (x - mean);
  }
  if (denom == 0.0) {
    return 0.0; // constant series: no correlation structure by convention
  }
  double num = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    num += (samples[i] - mean) * (samples[i + lag] - mean);
  }
  return num / denom;
}

std::vector<double> block_maxima(std::span<const double> samples,
                                 std::size_t block_size) {
  if (block_size == 0) {
    throw std::invalid_argument("block size must be positive");
  }
  std::vector<double> maxima;
  maxima.reserve(samples.size() / block_size);
  for (std::size_t start = 0; start + block_size <= samples.size();
       start += block_size) {
    double block_max = samples[start];
    for (std::size_t i = start + 1; i < start + block_size; ++i) {
      block_max = std::max(block_max, samples[i]);
    }
    maxima.push_back(block_max);
  }
  return maxima;
}

std::vector<double> exceedances_over(std::span<const double> samples,
                                     double threshold) {
  std::vector<double> out;
  for (const double x : samples) {
    if (x > threshold) {
      out.push_back(x - threshold);
    }
  }
  return out;
}

} // namespace proxima::mbpta
