// The i.i.d. hypothesis tests MBPTA requires (Section VI, "Fulfilling the
// i.i.d properties").
//
// The paper tests independence with the Ljung-Box test [7] and identical
// distribution with the two-sample Kolmogorov-Smirnov test [6], both at a
// 5% significance level: "i.i.d. is rejected only if the value for any of
// the tests is lower than 0.05".
#pragma once

#include <cstdint>
#include <span>

namespace proxima::mbpta {

struct LjungBoxResult {
  double statistic = 0.0; // Q
  double p_value = 1.0;
  std::uint32_t lags = 0;
  bool passes(double alpha = 0.05) const { return p_value >= alpha; }
};

/// Ljung-Box portmanteau test for autocorrelation up to `lags`.
/// Q = n(n+2) * sum_k rho_k^2 / (n-k)  ~  chi-square(lags) under H0.
LjungBoxResult ljung_box(std::span<const double> samples,
                         std::uint32_t lags = 20);

struct KsResult {
  double statistic = 0.0; // D
  double p_value = 1.0;
  bool passes(double alpha = 0.05) const { return p_value >= alpha; }
};

/// Two-sample Kolmogorov-Smirnov test with the asymptotic p-value.
KsResult ks_two_sample(std::span<const double> a, std::span<const double> b);

struct IidVerdict {
  LjungBoxResult independence;
  KsResult identical_distribution;
  double alpha = 0.05;
  bool passes() const {
    return independence.passes(alpha) && identical_distribution.passes(alpha);
  }
};

/// The paper's protocol: Ljung-Box on the full series; two-sample KS
/// between the first and second half of the measurement campaign.
IidVerdict check_iid(std::span<const double> samples, double alpha = 0.05,
                     std::uint32_t lb_lags = 20);

} // namespace proxima::mbpta
