// Extreme Value Theory fits and the pWCET model (Section II / VI).
//
// MBPTA [9] applies EVT to execution-time measurements to produce a pWCET
// distribution: "the highest probability (e.g. 1e-15) at which one instance
// of a program may exceed the corresponding execution time bound".
// Implemented estimators:
//   * Gumbel fit of block maxima via L-moments (the classic MBPTA choice —
//     light-tailed, conservative for cache-jitter distributions)
//   * full GEV fit via L-moments (Hosking), for shape diagnostics
//   * GPD fit of peaks-over-threshold exceedances via L-moments
// plus the CV (coefficient-of-variation) exponentiality diagnostic used by
// later MBPTA work to justify the exponential tail.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace proxima::mbpta {

/// Gumbel (GEV with shape 0): F(x) = exp(-exp(-(x-mu)/beta)).
struct GumbelFit {
  double location = 0.0; // mu
  double scale = 0.0;    // beta

  /// Inverse CDF at cumulative probability F.
  double quantile(double cumulative) const;
};

/// Generalised extreme value, standard parameterisation (xi > 0: heavy).
struct GevFit {
  double location = 0.0;
  double scale = 0.0;
  double shape = 0.0; // xi

  double quantile(double cumulative) const;
};

/// Generalised Pareto over a threshold.
struct GpdFit {
  double scale = 0.0;
  double shape = 0.0; // xi

  /// Value exceeded with probability `p` GIVEN the threshold is exceeded.
  double quantile_exceedance(double p) const;
};

GumbelFit fit_gumbel_lmoments(std::span<const double> maxima);
GevFit fit_gev_lmoments(std::span<const double> maxima);
GpdFit fit_gpd_lmoments(std::span<const double> exceedances);

/// CV exponentiality diagnostic: for exceedances of an exponential tail the
/// coefficient of variation is 1; the acceptance band shrinks with n.
struct CvTestResult {
  double cv = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  std::size_t exceedances = 0;
  bool passes() const { return cv >= lower && cv <= upper; }
};
CvTestResult cv_exponentiality(std::span<const double> samples,
                               double threshold_quantile = 0.9);

enum class TailMethod : std::uint8_t {
  kBlockMaximaGumbel,
  kBlockMaximaGev,
  kPotGpd,
};

/// A fitted pWCET model: maps a per-run exceedance probability to an
/// execution-time bound, and renders the exceedance curve of Figure 3.
class PwcetModel {
public:
  struct FitInfo {
    TailMethod method = TailMethod::kBlockMaximaGumbel;
    std::size_t samples = 0;
    std::size_t tail_points = 0; // block maxima or exceedances used
    std::uint32_t block_size = 0;
    double threshold = 0.0;      // POT only
    double exceed_rate = 0.0;    // POT only: P(X > threshold)
    GumbelFit gumbel;
    GevFit gev;
    GpdFit gpd;
  };

  /// Fit with block maxima (Gumbel or GEV tail).
  static PwcetModel fit_block_maxima(std::span<const double> samples,
                                     std::uint32_t block_size,
                                     bool full_gev = false);

  /// Fit with peaks over the `threshold_quantile` empirical quantile.
  static PwcetModel fit_pot(std::span<const double> samples,
                            double threshold_quantile = 0.9);

  /// Execution-time bound exceeded with probability at most `p` per run.
  /// Throws std::invalid_argument when `p` lies outside the model's valid
  /// range — (0, 1) generally, and for the block-maxima methods
  /// additionally p < 1/block_size: a larger per-run probability maps to a
  /// per-block probability >= 1, i.e. a *body* quantile the tail fit
  /// cannot answer (it used to be silently clamped, masquerading as a
  /// tail bound).
  double pwcet(double exceedance_per_run) const;

  /// Exclusive upper bound of the per-run exceedance probabilities the
  /// fitted tail can answer: 1/block_size for the block-maxima methods,
  /// 1 for POT.
  double max_exceedance() const noexcept;

  /// (time, exceedance probability) pairs for probabilities 10^-1..10^-k,
  /// skipping any leading decade outside the model's valid range (for a
  /// block size of 50 the curve starts at 1e-2).
  std::vector<std::pair<double, double>> curve(int decades = 16) const;

  const FitInfo& info() const noexcept { return info_; }

private:
  FitInfo info_;
};

} // namespace proxima::mbpta
