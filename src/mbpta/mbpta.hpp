// The complete MBPTA protocol, as integrated into the commercial timing
// analysis tool (Section V): take a campaign of execution-time measurements
// collected under randomisation, verify the i.i.d. hypothesis, fit the EVT
// tail, and deliver the pWCET distribution.  A convergence controller
// reproduces the incremental measure-test-extend loop of MBPTA [9].
#pragma once

#include "descriptive.hpp"
#include "evt.hpp"
#include "iid_tests.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace proxima::mbpta {

/// Auto block size for an n-run campaign: ~40 block maxima with a floor
/// of 10 — the one rule the CLI, the per-partition report and the benches
/// all share, so a retune cannot silently diverge between them.
inline std::uint32_t auto_block_size(std::size_t runs) {
  return std::max<std::uint32_t>(10, static_cast<std::uint32_t>(runs / 40));
}

struct MbptaConfig {
  double alpha = 0.05;          // significance for both i.i.d. tests
  std::uint32_t lb_lags = 20;   // Ljung-Box lag window
  std::uint32_t block_size = 50;
  TailMethod method = TailMethod::kBlockMaximaGumbel;
  double pot_threshold_quantile = 0.9;
};

struct MbptaAnalysis {
  Summary summary;
  IidVerdict iid;
  PwcetModel model;
  MbptaConfig config;

  /// pWCET estimate at a per-run exceedance probability (e.g. 1e-15).
  double pwcet(double exceedance_per_run) const {
    return model.pwcet(exceedance_per_run);
  }

  /// MBPTA is applicable only if the measurements pass the i.i.d. tests.
  bool applicable() const { return iid.passes(); }
};

/// Run the full analysis.  Throws std::invalid_argument when the campaign
/// is too short for the configured tests/fit.
MbptaAnalysis analyse(std::span<const double> samples,
                      const MbptaConfig& config = {});

/// Incremental campaign controller: feed measurement batches until the
/// pWCET estimate at `target_exceedance` stabilises (relative change below
/// `epsilon` for `stable_rounds` consecutive batches) with i.i.d. holding.
///
/// Order contract: the stop decision is a function of the *sequence* of
/// batches — both the sample order (the i.i.d. tests and the block-maxima
/// partition see it) and the batch boundaries (each `add_batch` appends one
/// estimate to the stability streak).  Feeding shards in parallel
/// completion order is therefore NOT reproducible across worker counts;
/// a campaign that wants a deterministic stop must assemble each growth
/// batch in run-index order and feed it exactly once — which is what
/// `exec::CampaignEngine::run_adaptive` does at its batch boundaries.
class ConvergenceController {
public:
  struct Config {
    double target_exceedance = 1e-12;
    double epsilon = 0.01;
    int stable_rounds = 3;
    std::size_t min_samples = 200;
    /// Non-convergence cap: once this many samples have been consumed
    /// without convergence, `add_batch` reports completion with
    /// `converged() == false` and `capped() == true` — the signal that the
    /// campaign budget is exhausted and MBPTA is not (yet) applicable.
    /// 0 disables the cap.
    std::size_t max_samples = 0;
    MbptaConfig mbpta;
  };

  ConvergenceController();
  /// Throws std::invalid_argument when `target_exceedance` lies outside
  /// the configured tail model's valid range (for block maxima:
  /// target < 1/block_size, see PwcetModel::pwcet) — catching the
  /// misconfiguration up front instead of mid-campaign, after
  /// `min_samples` runs have been burned.
  explicit ConvergenceController(const Config& config);

  /// Add a batch; returns true once the controller is done — converged,
  /// or stopped by the non-convergence cap (check `capped()`).
  bool add_batch(std::span<const double> batch);

  bool converged() const noexcept { return stable_count_ >= config_.stable_rounds; }
  /// True when the `max_samples` cap stopped the campaign unconverged.
  bool capped() const noexcept { return capped_; }
  std::size_t samples_used() const noexcept { return samples_.size(); }
  const std::vector<double>& estimates() const noexcept { return estimates_; }

  /// Final analysis over everything collected so far.
  MbptaAnalysis result() const { return analyse(samples_, config_.mbpta); }

private:
  Config config_;
  std::vector<double> samples_;
  std::vector<double> estimates_;
  int stable_count_ = 0;
  bool capped_ = false;
};

} // namespace proxima::mbpta
