// Special functions backing the statistical tests.
//
// Self-contained implementations (no external numerics dependency):
// Lanczos log-gamma, regularised incomplete gamma (series + Lentz continued
// fraction), the chi-square CDF used by the Ljung-Box test [7], and the
// asymptotic Kolmogorov distribution used by the two-sample KS test [6].
#pragma once

#include <cstdint>

namespace proxima::mbpta {

/// ln Γ(x) for x > 0 (Lanczos approximation, |error| < 1e-13).
double log_gamma(double x);

/// Regularised lower incomplete gamma P(a, x), a > 0, x >= 0.
double regularized_gamma_p(double a, double x);

/// Chi-square CDF with `dof` degrees of freedom.
double chi_square_cdf(double x, double dof);

/// Kolmogorov distribution survival function Q_KS(lambda) =
/// 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).  Returns the p-value of
/// a scaled KS statistic.
double ks_survival(double lambda);

/// Standard normal CDF.
double normal_cdf(double x);

} // namespace proxima::mbpta
