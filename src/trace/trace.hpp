// RVS/GRMON-style measurement infrastructure (Section V).
//
// The paper's toolchain instruments the application at unit-of-analysis
// (UoA) granularity, records (ipoint, cycle-count) pairs into a buffer "on
// a second memory bank to avoid interference with the application", dumps
// the binary trace over Ethernet after execution, and converts it into
// execution times for MBPTA.  This module reproduces each step:
//   Instrumenter  — inserts kIpoint instructions at UoA entry/exit
//   TraceBuffer   — the out-of-band timestamp store (+ binary round trip)
//   extract_execution_times — entry/exit pairing into per-invocation times
#pragma once

#include "isa/program.hpp"
#include "vm/vm.hpp"

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace proxima::trace {

class TraceError : public std::runtime_error {
public:
  explicit TraceError(const std::string& what) : std::runtime_error(what) {}
};

struct TraceRecord {
  std::uint32_t ipoint = 0;
  std::uint64_t cycles = 0;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Timestamp store on the "second memory bank": appends are performed by
/// the VM's ipoint hook and never touch the cache hierarchy (the kIpoint
/// instruction charges a small fixed cost instead).
class TraceBuffer {
public:
  void append(std::uint32_t ipoint, std::uint64_t cycles) {
    records_.push_back(TraceRecord{ipoint, cycles});
  }

  /// Wire the buffer to a core's instrumentation hook.
  void attach(vm::Vm& cpu) {
    cpu.set_ipoint_sink([this](std::uint32_t id, std::uint64_t cycles) {
      append(id, cycles);
    });
  }

  const std::vector<TraceRecord>& records() const noexcept { return records_; }
  std::size_t size() const noexcept { return records_.size(); }
  void clear() { records_.clear(); }

  /// GRMON-style binary dump (big-endian: u32 id, u64 cycles per record).
  std::vector<std::uint8_t> serialise() const;
  static TraceBuffer deserialise(std::span<const std::uint8_t> bytes);

private:
  std::vector<TraceRecord> records_;
};

/// Conventional ipoint identifiers for a UoA.
inline constexpr std::uint32_t kUoaEntryIpoint = 1;
inline constexpr std::uint32_t kUoaExitIpoint = 2;

/// Insert entry/exit ipoints around a function in `program`:
///  * `entry_id` before the first instruction,
///  * `exit_id` before every return (restore+jmpl epilogue, leaf jmpl
///    through %o7) and before every HALT.
/// Returns the number of exit points instrumented.
std::uint32_t instrument_function(isa::Program& program,
                                  const std::string& function_name,
                                  std::uint32_t entry_id = kUoaEntryIpoint,
                                  std::uint32_t exit_id = kUoaExitIpoint);

/// Pair entry/exit ipoints into per-invocation execution times (cycles).
/// Nested or unmatched pairs raise TraceError — the UoA is not reentrant.
std::vector<double> extract_execution_times(
    const TraceBuffer& buffer, std::uint32_t entry_id = kUoaEntryIpoint,
    std::uint32_t exit_id = kUoaExitIpoint);

} // namespace proxima::trace
