#include "trace.hpp"

#include "isa/transform.hpp"

namespace proxima::trace {

std::vector<std::uint8_t> TraceBuffer::serialise() const {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(records_.size() * 12);
  for (const TraceRecord& record : records_) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      bytes.push_back(static_cast<std::uint8_t>(record.ipoint >> shift));
    }
    for (int shift = 56; shift >= 0; shift -= 8) {
      bytes.push_back(static_cast<std::uint8_t>(record.cycles >> shift));
    }
  }
  return bytes;
}

TraceBuffer TraceBuffer::deserialise(std::span<const std::uint8_t> bytes) {
  if (bytes.size() % 12 != 0) {
    throw TraceError("corrupt binary trace: size not a record multiple");
  }
  TraceBuffer buffer;
  for (std::size_t offset = 0; offset < bytes.size(); offset += 12) {
    std::uint32_t id = 0;
    for (int i = 0; i < 4; ++i) {
      id = (id << 8) | bytes[offset + i];
    }
    std::uint64_t cycles = 0;
    for (int i = 4; i < 12; ++i) {
      cycles = (cycles << 8) | bytes[offset + i];
    }
    buffer.append(id, cycles);
  }
  return buffer;
}

std::uint32_t instrument_function(isa::Program& program,
                                  const std::string& function_name,
                                  std::uint32_t entry_id,
                                  std::uint32_t exit_id) {
  isa::Function* function = program.find_function(function_name);
  if (function == nullptr) {
    throw TraceError("instrument_function: unknown function '" +
                     function_name + "'");
  }
  std::vector<isa::CodeEdit> edits;
  auto insert_before = [&edits](std::size_t index, std::uint32_t id) {
    isa::CodeEdit edit;
    edit.index = index;
    edit.keep_original = true;
    edit.code.push_back(
        isa::make_b(isa::Opcode::kIpoint, static_cast<std::int32_t>(id)));
    edits.push_back(edit);
  };

  insert_before(0, entry_id);

  std::uint32_t exits = 0;
  const auto& code = function->code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const isa::Instruction& instr = code[i];
    const bool is_epilogue_restore =
        instr.op == isa::Opcode::kRestore && i + 1 < code.size() &&
        code[i + 1].op == isa::Opcode::kJmpl;
    const bool is_leaf_return = instr.op == isa::Opcode::kJmpl &&
                                instr.rd == isa::kG0 &&
                                instr.rs1 == isa::kO7 &&
                                (i == 0 || code[i - 1].op != isa::Opcode::kRestore);
    const bool is_halt = instr.op == isa::Opcode::kHalt;
    if (is_epilogue_restore || is_leaf_return || is_halt) {
      if (i == 0) {
        continue; // entry edit already owns index 0
      }
      insert_before(i, exit_id);
      ++exits;
    }
  }
  if (exits == 0) {
    throw TraceError("instrument_function: '" + function_name +
                     "' has no recognisable return or halt");
  }
  isa::apply_edits(*function, std::move(edits));
  return exits;
}

std::vector<double> extract_execution_times(const TraceBuffer& buffer,
                                            std::uint32_t entry_id,
                                            std::uint32_t exit_id) {
  std::vector<double> times;
  bool open = false;
  std::uint64_t entry_cycles = 0;
  for (const TraceRecord& record : buffer.records()) {
    if (record.ipoint == entry_id) {
      if (open) {
        throw TraceError("trace: nested UoA entry");
      }
      open = true;
      entry_cycles = record.cycles;
    } else if (record.ipoint == exit_id) {
      if (!open) {
        throw TraceError("trace: UoA exit without entry");
      }
      open = false;
      times.push_back(static_cast<double>(record.cycles - entry_cycles));
    }
    // Other ipoint ids belong to other UoAs; ignore.
  }
  if (open) {
    throw TraceError("trace: UoA entry without exit");
  }
  return times;
}

} // namespace proxima::trace
