#include "partition_report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace proxima::trace {

PartitionReport PartitionReport::build(std::span<const PartitionSeries> series,
                                       double target_exceedance,
                                       std::uint32_t block_size) {
  PartitionReport report;
  report.target_exceedance = target_exceedance;
  report.entries.reserve(series.size());
  for (const PartitionSeries& partition : series) {
    Entry entry;
    entry.partition = partition.partition;
    entry.summary = mbpta::summarise(partition.cycles);
    entry.overruns = partition.overruns;
    mbpta::MbptaConfig config;
    config.block_size = block_size != 0
                            ? block_size
                            : mbpta::auto_block_size(partition.cycles.size());
    try {
      const mbpta::MbptaAnalysis analysis =
          mbpta::analyse(partition.cycles, config);
      entry.iid_passes = analysis.applicable();
      entry.pwcet = analysis.pwcet(target_exceedance);
    } catch (const std::invalid_argument&) {
      // Series too short for the fit (or the target outside the model's
      // range): the descriptive row still stands, the bound does not.
    }
    report.entries.push_back(std::move(entry));
  }
  return report;
}

std::string PartitionReport::to_string() const {
  std::ostringstream oss;
  char line[200];
  std::snprintf(line, sizeof(line), "  %-14s %8s %12s %12s %12s %9s  %s\n",
                "partition", "n", "min", "avg", "MOET", "overruns",
                "pWCET");
  oss << line;
  for (const Entry& entry : entries) {
    std::string pwcet = "-";
    if (entry.pwcet) {
      char bound[64];
      std::snprintf(bound, sizeof(bound), "%.0f @ %.0e%s", *entry.pwcet,
                    target_exceedance,
                    entry.iid_passes ? "" : " (i.i.d. FAILED)");
      pwcet = bound;
    }
    std::snprintf(line, sizeof(line),
                  "  %-14s %8zu %12.0f %12.1f %12.0f %9llu  %s\n",
                  entry.partition.c_str(), entry.summary.count,
                  entry.summary.min, entry.summary.mean, entry.summary.max,
                  static_cast<unsigned long long>(entry.overruns),
                  pwcet.c_str());
    oss << line;
  }
  return oss.str();
}

} // namespace proxima::trace
