#include "report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iomanip>
#include <sstream>
#include <vector>

namespace proxima::trace {

TimingReport TimingReport::from_times(std::span<const double> times) {
  TimingReport report;
  report.summary = mbpta::summarise(times);
  return report;
}

std::string TimingReport::to_string() const {
  std::ostringstream oss;
  oss << "n=" << summary.count << " min=" << summary.min
      << " avg=" << summary.mean << " max(MOET)=" << summary.max
      << " sd=" << summary.stddev;
  return oss.str();
}

std::string ascii_exceedance_plot(const mbpta::PwcetModel& model,
                                  std::span<const double> measured,
                                  int width, int height) {
  if (width < 20 || height < 8) {
    return "(plot area too small)\n";
  }
  // Decades whose per-run probability falls outside the model's valid
  // range are absent from the curve (e.g. 1e-1 for a block size of 50),
  // so every point carries its probability and the row is derived from it.
  const auto curve = model.curve(height - 2);
  if (curve.empty()) {
    return "(no pWCET curve point within the plotted decades)\n";
  }
  // X range: from the measured minimum to the deepest pWCET point.
  double x_min = curve.front().first;
  double x_max = curve.back().first;
  for (const double t : measured) {
    x_min = std::min(x_min, t);
  }
  if (x_max <= x_min) {
    x_max = x_min + 1.0;
  }

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  const auto column = [&](double x) {
    const double f = (x - x_min) / (x_max - x_min);
    const int c = static_cast<int>(f * (width - 1));
    return std::clamp(c, 0, width - 1);
  };
  // Row r corresponds to exceedance 10^-(r+1); row 0 at the top (10^-1).
  const auto row_of_decade = [&](int decade) {
    return std::clamp(decade - 1, 0, height - 1);
  };

  // Empirical exceedance of the measurements: for each sorted value the
  // fraction of runs strictly above it.
  std::vector<double> sorted(measured.begin(), measured.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double exceed = (n - 1.0 - static_cast<double>(i)) / n;
    if (exceed <= 0.0) {
      continue;
    }
    const double decade = -std::log10(exceed);
    const int r = row_of_decade(static_cast<int>(decade) + 1);
    grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(
        column(sorted[i]))] = '+';
  }

  // Fitted pWCET curve: each point at the row of its own decade.
  for (const auto& [x, p] : curve) {
    const int d = static_cast<int>(std::lround(-std::log10(p)));
    grid[static_cast<std::size_t>(row_of_decade(d))]
        [static_cast<std::size_t>(column(x))] = '*';
  }

  std::ostringstream oss;
  oss << "  exceedance        execution time ->\n";
  for (int r = 0; r < height; ++r) {
    std::ostringstream label;
    label << "1e-" << (r + 1);
    oss << "  " << label.str() << std::string(8 - label.str().size(), ' ')
        << '|' << grid[static_cast<std::size_t>(r)] << '\n';
  }
  oss << "          +" << std::string(static_cast<std::size_t>(width), '-')
      << '\n';
  oss << "           " << x_min << " ... " << x_max
      << "   [+ = measured, * = pWCET]\n";
  return oss.str();
}

std::string pwcet_curve_csv(const mbpta::PwcetModel& model, int decades) {
  std::ostringstream oss;
  oss << "exceedance_probability,pwcet_cycles\n";
  for (const auto& [x, p] : model.curve(decades)) {
    oss << p << ',' << x << '\n';
  }
  return oss.str();
}

std::uint64_t times_digest(std::span<const double> times) {
  std::uint64_t hash = 0xcbf29ce484222325ULL; // FNV-1a offset basis
  for (const double time : times) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &time, sizeof(bits));
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (bits >> (8 * byte)) & 0xffULL;
      hash *= 0x100000001b3ULL; // FNV prime
    }
  }
  return hash;
}

std::string times_digest_hex(std::span<const double> times) {
  std::ostringstream oss;
  oss << "0x" << std::hex << std::setw(16) << std::setfill('0')
      << times_digest(times);
  return oss.str();
}

std::string times_csv(std::span<const double> times) {
  std::ostringstream oss;
  oss << "run,cycles\n";
  for (std::size_t i = 0; i < times.size(); ++i) {
    oss << i << ',' << times[i] << '\n';
  }
  return oss.str();
}

} // namespace proxima::trace
