// Per-partition reporting for hypervisor campaigns.
//
// A hypervisor campaign measures the control task while guest partitions
// share the platform; the analyst then wants the timing picture *per
// partition*: activation counts, min/avg/MOET over the cycles the schedule
// actually granted, budget-fence violations, and — where the series is
// long enough and i.i.d. holds — a Gumbel pWCET bound.  This renders the
// per-partition rows of the paper's Section IV protocol the way
// trace::TimingReport renders the single-task summaries.
#pragma once

#include "mbpta/mbpta.hpp"

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace proxima::trace {

/// One partition's flattened campaign series: every activation's granted
/// cycles in schedule order across all runs, plus the violations the
/// health monitor recorded.  Assembled by `casestudy::partition_series`.
struct PartitionSeries {
  std::string partition;
  std::vector<double> cycles;
  std::uint64_t overruns = 0;
};

struct PartitionReport {
  struct Entry {
    std::string partition;
    mbpta::Summary summary; // n / min / mean / MOET over granted cycles
    std::uint64_t overruns = 0;
    /// Gumbel fit verdict and pWCET at `target_exceedance`; absent when
    /// the series is too short for the configured fit.
    bool iid_passes = false;
    std::optional<double> pwcet;
  };

  double target_exceedance = 1e-12;
  std::vector<Entry> entries; // registration order preserved

  /// Build the report.  `block_size` 0 derives max(10, n/40) per
  /// partition, the CLI's auto rule.  Partitions whose series cannot carry
  /// the fit (too short, i.i.d. machinery throws) get no pwcet rather than
  /// failing the report.
  static PartitionReport build(std::span<const PartitionSeries> series,
                               double target_exceedance = 1e-12,
                               std::uint32_t block_size = 0);

  /// Aligned table: one row per partition.
  std::string to_string() const;
};

} // namespace proxima::trace
