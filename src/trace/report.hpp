// Reporting: the RVS-Viewer side of the toolchain (Figures 2 and 3).
//
// Renders timing summaries (min / average / MOET), the current-practice
// MBDTA bound (MOET + engineering margin, 20% for simple single-core
// processors per Section VI), pWCET exceedance curves as ASCII plots, and
// CSV series for offline plotting.
#pragma once

#include "mbpta/evt.hpp"
#include "mbpta/descriptive.hpp"

#include <span>
#include <string>

namespace proxima::trace {

/// Industrial-practice margin over the MOET (Section VI: "A typical margin
/// for relatively simple single-core processors is 20%").
inline constexpr double kIndustrialMargin = 0.20;

struct TimingReport {
  mbpta::Summary summary;

  static TimingReport from_times(std::span<const double> times);

  double moet() const { return summary.max; }
  /// Current-practice deterministic bound: MOET + engineering margin.
  double mbdta_bound(double margin = kIndustrialMargin) const {
    return summary.max * (1.0 + margin);
  }

  /// Aligned one-line rendering: "min=... avg=... max=...".
  std::string to_string() const;
};

/// ASCII rendering of Figure 3: log10 exceedance probability (y) against
/// execution time (x), with the measured execution times' empirical
/// exceedance ('+') and the fitted pWCET curve ('*').
std::string ascii_exceedance_plot(const mbpta::PwcetModel& model,
                                  std::span<const double> measured,
                                  int width = 64, int height = 18);

/// CSV rows "exceedance_probability,pwcet_cycles" for the fitted curve.
std::string pwcet_curve_csv(const mbpta::PwcetModel& model, int decades = 16);

/// CSV rows "index,cycles" of a measurement campaign.
std::string times_csv(std::span<const double> times);

/// FNV-1a digest over the bit patterns of a campaign's times, rendered as
/// "0x%016x".  Two campaigns print the same digest iff their times are
/// bit-identical — the cheap cross-run check behind the engine's
/// determinism contract (e.g. `proxima run --workers 8` vs `--workers 1`).
std::uint64_t times_digest(std::span<const double> times);
std::string times_digest_hex(std::span<const double> times);

} // namespace proxima::trace
