// Deterministic per-run seed derivation for the campaign engine.
//
// Every measurement run of a campaign draws its randomness (input vector,
// DSR/static/hardware layout) from generators seeded as a pure function of
// (campaign seed, stream, global activation index).  This is what makes a
// sharded campaign reproducible: any worker can execute any run and obtain
// exactly the randomness the sequential protocol would have used, so the
// aggregated `CampaignResult` is bit-identical regardless of worker count
// or scheduling order.
//
// The derivation is the SplitMix64 finaliser (Steele, Lea & Flood, OOPSLA
// 2014) applied in three chained rounds — base seed, stream tag, run index —
// giving well-mixed, collision-resistant 64-bit seeds for the target
// generators (MWC, LFSR).  It is host-side machinery only and not part of
// the paper's target software stack.
#pragma once

#include <cstdint>

namespace proxima::exec {

/// Independent randomness streams of one campaign.  Streams keep the input
/// draw of run k uncorrelated with the layout draw of run k even though
/// both derive from the same run index.
enum class SeedStream : std::uint64_t {
  kInput = 0x1,  // sensor / spacecraft-bus input vectors
  kLayout = 0x2, // DSR relocation, static re-link, hardware cache reseed
};

/// The SplitMix64 output finaliser: a 64-bit mixing bijection.
constexpr std::uint64_t splitmix64_mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seed for `stream` at global activation index `run` of a campaign whose
/// base seed is `base`.  Pure function of its arguments.
constexpr std::uint64_t derive_run_seed(std::uint64_t base, SeedStream stream,
                                        std::uint64_t run) noexcept {
  return splitmix64_mix(
      splitmix64_mix(splitmix64_mix(base) ^
                     static_cast<std::uint64_t>(stream)) ^
      run);
}

/// Per-partition seed for hypervisor campaigns: one more SplitMix64 round
/// over the run seed, keyed by the partition's registration index.  Every
/// partition of a multi-partition layout draws from its own well-mixed
/// stream while the whole platform state stays a pure function of the run
/// index — the property that lets the engine shard hypervisor scenarios
/// exactly like bare-platform ones.
constexpr std::uint64_t derive_partition_seed(std::uint64_t base,
                                              SeedStream stream,
                                              std::uint64_t run,
                                              std::uint32_t partition) noexcept {
  return splitmix64_mix(derive_run_seed(base, stream, run) ^
                        (static_cast<std::uint64_t>(partition) + 1));
}

} // namespace proxima::exec
