#include "registry.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

namespace proxima::exec {

namespace {

/// Levenshtein edit distance, small-string DP (scenario names are short).
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) {
    row[j] = j;
  }
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

/// Closest registered names to a typo, nearest first; only names within a
/// third of the query's length (so 'nope' suggests nothing rather than
/// everything).
std::vector<std::string> closest_names(std::string_view query,
                                       const std::vector<std::string>& names) {
  const std::size_t threshold = std::max<std::size_t>(2, query.size() / 3);
  std::vector<std::pair<std::size_t, std::string>> scored;
  for (const std::string& name : names) {
    const std::size_t distance = edit_distance(query, name);
    if (distance <= threshold) {
      scored.emplace_back(distance, name);
    }
  }
  std::sort(scored.begin(), scored.end());
  std::vector<std::string> result;
  for (std::size_t i = 0; i < scored.size() && i < 3; ++i) {
    result.push_back(scored[i].second);
  }
  return result;
}

/// Registered families ("control/", "hv/", ...) with member counts, in
/// sorted order.
std::map<std::string, std::size_t>
family_counts(const std::vector<std::string>& names) {
  std::map<std::string, std::size_t> families;
  for (const std::string& name : names) {
    const std::size_t slash = name.find('/');
    ++families[slash == std::string::npos ? name
                                          : name.substr(0, slash + 1)];
  }
  return families;
}

} // namespace

void ScenarioRegistry::add(Scenario scenario) {
  if (scenario.name.empty()) {
    throw std::invalid_argument("scenario name must not be empty");
  }
  if (!scenario.make_config) {
    throw std::invalid_argument("scenario '" + scenario.name +
                                "' has no config factory");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key = scenario.name; // keep the key independent of the move
  const auto [it, inserted] =
      scenarios_.emplace(std::move(key), std::move(scenario));
  if (!inserted) {
    throw std::invalid_argument("scenario '" + it->first +
                                "' is already registered");
  }
}

bool ScenarioRegistry::contains(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scenarios_.find(name) != scenarios_.end();
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

const Scenario& ScenarioRegistry::at(std::string_view name) const {
  if (const Scenario* scenario = find(name)) {
    return *scenario;
  }
  // A growing registry makes the bare "unknown scenario" error unusable:
  // lead with the closest matches and the family map, then the catalogue.
  const std::vector<std::string> known = names();
  std::ostringstream oss;
  oss << "unknown scenario '" << name << "'";
  const std::vector<std::string> closest = closest_names(name, known);
  if (!closest.empty()) {
    oss << "; did you mean:";
    for (const std::string& suggestion : closest) {
      oss << ' ' << suggestion;
    }
    oss << '?';
  }
  oss << "\nfamilies:";
  for (const auto& [family, count] : family_counts(known)) {
    oss << ' ' << family << '(' << count << ')';
  }
  oss << "\nknown scenarios:";
  for (const std::string& name_ : known) {
    oss << "\n  " << name_;
  }
  throw std::out_of_range(oss.str());
}

std::vector<std::string> ScenarioRegistry::names(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> result;
  result.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) {
    (void)scenario;
    if (name.size() >= prefix.size() &&
        std::string_view(name).substr(0, prefix.size()) == prefix) {
      result.push_back(name); // std::map iterates in sorted order
    }
  }
  return result;
}

std::size_t ScenarioRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scenarios_.size();
}

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry* registry = [] {
    auto* fresh = new ScenarioRegistry;
    register_default_scenarios(*fresh);
    return fresh;
  }();
  return *registry;
}

// ---------------------------------------------------------------------------
// Default catalogue.
// ---------------------------------------------------------------------------

namespace {

using casestudy::CampaignConfig;
using casestudy::Layout;
using casestudy::MeasuredTargetKind;
using casestudy::PrngKind;
using casestudy::Randomisation;

/// Operation-like protocol: fresh random inputs every activation
/// (Figure 2 / Table I conditions).
CampaignConfig operation_base(Randomisation randomisation,
                              std::uint32_t runs) {
  CampaignConfig config;
  config.runs = runs;
  config.randomisation = randomisation;
  return config;
}

/// Analysis-like protocol: one pinned stress input (recovery path forced),
/// so the measured variability is the platform's (MBPTA methodology,
/// Figure 3).
CampaignConfig analysis_base(Randomisation randomisation,
                             std::uint32_t runs) {
  CampaignConfig config = operation_base(randomisation, runs);
  config.fixed_inputs = true;
  config.control.corrupt_rate = 1.0;
  return config;
}

/// Hypervisor campaigns: the analysis protocol (pinned control input) on
/// the partitioned platform, so the measured spread is attributable to the
/// layout (DSR) and to the guests' interference alone.  The image guest is
/// scaled down to a 6x6 lens grid: its ~42 KiB frame sweep still evicts
/// the whole 32 KiB direct-mapped L2 every minor frame while keeping
/// registry-default campaigns CI-sized.
CampaignConfig hv_base(Randomisation randomisation, std::uint32_t runs) {
  CampaignConfig config = analysis_base(randomisation, runs);
  casestudy::HvCampaignConfig hv;
  hv.frames = 10; // the paper's 1 s control period over 100 ms frames
  config.hypervisor = hv;
  return config;
}

casestudy::ImageParams hv_image_params() {
  casestudy::ImageParams params;
  params.grid = 6;
  return params;
}

/// Image-task measured campaigns (the second case-study axis: an
/// input-dependent-duration workload).  Operation protocol: a fresh sensor
/// frame every activation, so the measured spread mixes program (lit-lens
/// selection) and platform variability — the regime where plain MBPTA
/// struggles.  Registry defaults use the same CI-sized 6x6 lens grid as
/// the hv guest; `ImageParams` scale it back up to the paper's 12x12.
CampaignConfig image_operation_base(Randomisation randomisation,
                                    std::uint32_t runs) {
  CampaignConfig config = operation_base(randomisation, runs);
  config.measured = MeasuredTargetKind::kImage;
  config.image = hv_image_params();
  return config;
}

/// Image analysis protocol (MBPTA methodology): ONE pinned frame with
/// every lens lit — the all-lenses worst-case path, the image task's
/// analogue of the control task's pinned corrupt-packet recovery — so the
/// measured variability is the platform's alone.
CampaignConfig image_analysis_base(Randomisation randomisation,
                                   std::uint32_t runs) {
  CampaignConfig config = image_operation_base(randomisation, runs);
  config.fixed_inputs = true;
  config.image.lit_fraction = 1.0;
  return config;
}

/// Hypervisor campaigns measuring the IMAGE partition: the image analysis
/// protocol on the cyclic schedule with the control task riding as an
/// every-frame interference guest (fresh spacecraft-bus inputs per frame
/// from its fixed partition stream).
CampaignConfig hv_image_base(Randomisation randomisation,
                             std::uint32_t runs) {
  CampaignConfig config = image_analysis_base(randomisation, runs);
  casestudy::HvCampaignConfig hv;
  hv.frames = 10;
  hv.control_guest = true;
  config.hypervisor = hv;
  return config;
}

/// Leak-beacon campaigns (the `leak/` family): the address-leak analysis
/// subject of `proxima lint`.  Fresh input blocks per activation (the task
/// has no persistent state); the scenarios themselves leave dynamic taint
/// OFF so their time digests stay lockable — lint and the tests flip
/// `CampaignConfig::taint` on top of the same configs.
CampaignConfig leak_base(MeasuredTargetKind kind, Randomisation randomisation,
                         std::uint32_t runs) {
  CampaignConfig config = operation_base(randomisation, runs);
  config.measured = kind;
  return config;
}

struct NamedRandomisation {
  const char* key;
  const char* label;
  Randomisation randomisation;
};

constexpr NamedRandomisation kRandomisations[] = {
    {"cots", "fixed COTS layout", Randomisation::kNone},
    {"dsr", "dynamic software randomisation", Randomisation::kDsr},
    {"static", "static per-run re-link", Randomisation::kStatic},
    {"hwrand", "hardware time-randomised caches", Randomisation::kHardware},
};

} // namespace

void register_default_scenarios(ScenarioRegistry& registry) {
  // The paper's two measurement protocols, for every randomisation
  // technology under comparison.
  for (const NamedRandomisation& r : kRandomisations) {
    registry.add(Scenario{
        std::string("control/operation-") + r.key,
        std::string("control task, operation-like inputs, ") + r.label,
        [randomisation = r.randomisation](std::uint32_t runs) {
          return operation_base(randomisation, runs);
        }});
    registry.add(Scenario{
        std::string("control/analysis-") + r.key,
        std::string("control task, pinned stress input (MBPTA), ") + r.label,
        [randomisation = r.randomisation](std::uint32_t runs) {
          return analysis_base(randomisation, runs);
        }});
  }

  // Layout sweep: the engineered bad-and-rare COTS layout vs a
  // conflict-free placement (ablation baseline).
  registry.add(Scenario{
      "control/layout-neutral",
      "control task on the deliberately conflict-free link layout",
      [](std::uint32_t runs) {
        CampaignConfig config = operation_base(Randomisation::kNone, runs);
        config.layout = Layout::kNeutral;
        return config;
      }});

  // PRNG sweep: the paper selects MWC; LFSR is the qualified alternative
  // (ablation A4).
  registry.add(Scenario{
      "control/prng-lfsr",
      "DSR with the LFSR random source instead of MWC",
      [](std::uint32_t runs) {
        CampaignConfig config = operation_base(Randomisation::kDsr, runs);
        config.prng = PrngKind::kLfsr;
        return config;
      }});

  // Lazy relocation scheme: per-function first-call traps instead of the
  // eager start-up loop (the trade-off of Section III.B.1).  Also the
  // scenario that rewrites code *mid-activation*, which is what the fast
  // VM core's decode-cache coherence is differentially tested against.
  registry.add(Scenario{
      "control/dsr-lazy",
      "DSR with lazy first-call relocation instead of the eager loop",
      [](std::uint32_t runs) {
        CampaignConfig config = operation_base(Randomisation::kDsr, runs);
        config.pass_options.lazy_stubs = true;
        config.dsr_options.eager = false;
        return config;
      }});

  // Offset-range sweep: shrinking the random-offset range to the L1 way
  // size shows what randomising only the L1 layout would lose (ablation).
  registry.add(Scenario{
      "control/offset-l1",
      "DSR with the offset range shrunk to the L1 way size (4 KiB)",
      [](std::uint32_t runs) {
        CampaignConfig config = operation_base(Randomisation::kDsr, runs);
        config.dsr_options.offset_range = 4 * 1024;
        return config;
      }});

  // Fixed-input stress without randomisation: the validation expert's
  // worst-case scenario on the bare COTS platform, with the recovery path
  // pinned on but inputs still varying run to run.
  registry.add(Scenario{
      "control/stress-corrupt",
      "control task with every activation carrying a corrupt packet",
      [](std::uint32_t runs) {
        CampaignConfig config = operation_base(Randomisation::kNone, runs);
        config.control.corrupt_rate = 1.0;
        return config;
      }});

  // On-demand re-randomisation (MARDU-style, ISSUE 10): the DSR arm that
  // also reseeds MID-RUN whenever the configured trigger fires — a taint
  // sink-store on the bare platform (the runner forces taint tracking on),
  // a partition switch under the hypervisor.  The control task never
  // stores a layout-derived value into its observable outputs, so this
  // scenario prices the always-armed trigger machinery itself; the
  // leak/beacon-ondemand scenario below is the one where the bare trigger
  // actually fires.
  registry.add(Scenario{
      "control/dsr-ondemand",
      "DSR with the on-demand reseed trigger armed (taint sink-store)",
      [](std::uint32_t runs) {
        return operation_base(Randomisation::kDsrOnDemand, runs);
      }});

  // Hypervisor campaigns (Section IV's PikeOS setting): the control task
  // measured on the cyclic schedule, solo and under guest interference.
  // hv/control-solo reproduces the bare analysis protocol (no guests run
  // before the measured activation), so the solo-vs-guest delta isolates
  // the interference itself.
  registry.add(Scenario{
      "hv/control-solo",
      "control task alone on the cyclic schedule (interference baseline)",
      [](std::uint32_t runs) { return hv_base(Randomisation::kNone, runs); }});
  registry.add(Scenario{
      "hv/control+image",
      "control task with the image task as guest partition, COTS layout",
      [](std::uint32_t runs) {
        CampaignConfig config = hv_base(Randomisation::kNone, runs);
        config.hypervisor->image_guest = true;
        config.hypervisor->image = hv_image_params();
        return config;
      }});
  registry.add(Scenario{
      "hv/control+image-dsr",
      "control task with the image guest, DSR-randomised per reboot",
      [](std::uint32_t runs) {
        CampaignConfig config = hv_base(Randomisation::kDsr, runs);
        config.hypervisor->image_guest = true;
        config.hypervisor->image = hv_image_params();
        return config;
      }});
  registry.add(Scenario{
      "hv/control+image-ondemand",
      "control task with the image guest, layout reseeded at every "
      "partition switch (on-demand DSR)",
      [](std::uint32_t runs) {
        CampaignConfig config = hv_base(Randomisation::kDsrOnDemand, runs);
        config.hypervisor->image_guest = true;
        config.hypervisor->image = hv_image_params();
        return config;
      }});
  registry.add(Scenario{
      "hv/control+stress",
      "control task with the synthetic L2-evicting stressor guest",
      [](std::uint32_t runs) {
        CampaignConfig config = hv_base(Randomisation::kNone, runs);
        config.hypervisor->stressor_guest = true;
        return config;
      }});

  // The image task as a MEASURED workload (ROADMAP: the second case-study
  // axis): input-dependent duration under each randomisation technology,
  // operation- and analysis-like (static re-link works on the bare
  // platform; the hv variants below exclude it as always).
  for (const NamedRandomisation& r : kRandomisations) {
    if (r.randomisation == Randomisation::kStatic) {
      continue; // keep the family at the techs the paper compares for it
    }
    registry.add(Scenario{
        std::string("image/operation-") + r.key,
        std::string("image task (input-dependent duration), fresh frames, ") +
            r.label,
        [randomisation = r.randomisation](std::uint32_t runs) {
          return image_operation_base(randomisation, runs);
        }});
    registry.add(Scenario{
        std::string("image/analysis-") + r.key,
        std::string("image task, pinned all-lenses-lit frame (MBPTA), ") +
            r.label,
        [randomisation = r.randomisation](std::uint32_t runs) {
          return image_analysis_base(randomisation, runs);
        }});
  }

  // The address-leak beacon family (ISSUE 8: `proxima lint` subjects).
  // beacon-* publish their own return address in an observable status
  // field — under DSR that address is the per-reboot layout, the secrecy
  // violation the analyzer exists to catch; hardened-dsr is the fixed
  // variant (constant in the same field) and must lint clean.
  registry.add(Scenario{
      "leak/beacon-dsr",
      "leaky beacon (return address in lk_status) under DSR — lint flags it",
      [](std::uint32_t runs) {
        return leak_base(MeasuredTargetKind::kLeakyBeacon, Randomisation::kDsr,
                         runs);
      }});
  registry.add(Scenario{
      "leak/hardened-dsr",
      "hardened beacon (constant in the status field) under DSR — lint clean",
      [](std::uint32_t runs) {
        return leak_base(MeasuredTargetKind::kHardenedBeacon,
                         Randomisation::kDsr, runs);
      }});
  registry.add(Scenario{
      "leak/beacon-cots",
      "leaky beacon on the fixed COTS layout (leak exists, nothing secret)",
      [](std::uint32_t runs) {
        return leak_base(MeasuredTargetKind::kLeakyBeacon, Randomisation::kNone,
                         runs);
      }});

  // The leaky beacon under on-demand DSR: every detected sink-store
  // reseeds the layout mid-run, so the published address is stale by the
  // time an observer could read it — the MARDU-style moving-target answer
  // to the leak the lint verb reports.
  registry.add(Scenario{
      "leak/beacon-ondemand",
      "leaky beacon with on-demand DSR: each detected leak reseeds the "
      "layout mid-run",
      [](std::uint32_t runs) {
        return leak_base(MeasuredTargetKind::kLeakyBeacon,
                         Randomisation::kDsrOnDemand, runs);
      }});

  // Cross-partition exposure: the leaky beacon measured on the cyclic
  // schedule with the control task riding as an observer guest — the
  // quantified version of "another partition can read the layout bits the
  // beacon publishes" (the beacon's status block lives in shared guest
  // memory).
  registry.add(Scenario{
      "leak/observer-hv",
      "leaky beacon under DSR with a control-task observer partition",
      [](std::uint32_t runs) {
        CampaignConfig config =
            leak_base(MeasuredTargetKind::kLeakyBeacon, Randomisation::kDsr,
                      runs);
        casestudy::HvCampaignConfig hv;
        hv.frames = 10;
        hv.control_guest = true;
        config.hypervisor = hv;
        return config;
      }});

  // Hypervisor campaigns with the IMAGE partition measured under
  // control-task interference (ROADMAP "measured-partition selection"):
  // the mirror image of hv/control+image.
  registry.add(Scenario{
      "hv/image+control",
      "image task measured under control-task interference, COTS layout",
      [](std::uint32_t runs) { return hv_image_base(Randomisation::kNone,
                                                    runs); }});
  registry.add(Scenario{
      "hv/image+control-dsr",
      "image task measured under control-task interference, DSR per reboot",
      [](std::uint32_t runs) { return hv_image_base(Randomisation::kDsr,
                                                    runs); }});
}

} // namespace proxima::exec
