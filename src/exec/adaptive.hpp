// Convergence-driven adaptive campaign types.
//
// The paper's measurement protocol is incremental: runs are collected
// until the MBPTA convergence criterion holds, not for a fixed count.
// `CampaignEngine::run_adaptive` grows a campaign in fixed-size batches,
// executes each batch across the worker pool, and feeds the completed
// batch — reassembled in run-index order — to an
// `mbpta::ConvergenceController`.  Convergence is evaluated ONLY at these
// deterministic batch boundaries, so the stop decision (and therefore the
// collected sample set) is bit-identical for a given seed regardless of
// worker count or shard completion order.
#pragma once

#include "mbpta/mbpta.hpp"

#include "casestudy/campaign.hpp"

#include <cstdint>
#include <vector>

namespace proxima::exec {

struct ConvergenceOptions {
  /// Growth quantum: the campaign extends by this many runs at a time and
  /// the convergence criterion is evaluated after each extension.  Must be
  /// >= 1.
  std::uint64_t batch_runs = 100;
  /// Hard campaign budget; the final batch is truncated to it.  0 uses the
  /// config's own `runs` as the budget.
  std::uint64_t max_runs = 0;
  /// The MBPTA stop criterion (target exceedance, epsilon, stable rounds,
  /// minimum samples, optional non-convergence cap, tail-fit config).
  mbpta::ConvergenceController::Config controller;
};

/// Outcome of an adaptive campaign: the collected measurements — a prefix
/// [0, N) of the run-index space, bit-identical to a fixed N-run campaign
/// of the same config — plus the convergence trace.
struct AdaptiveCampaignResult {
  casestudy::CampaignResult campaign;
  /// The MBPTA criterion was met at the final batch boundary.
  bool converged = false;
  /// Stopped by a budget (engine `max_runs` or controller cap) without
  /// convergence.  Exactly one of `converged`/`capped` is true.
  bool capped = false;
  /// Batches executed (= convergence evaluations performed).
  std::size_t batches = 0;
  /// Per-evaluation pWCET estimates (NaN where the i.i.d. verdict failed),
  /// as recorded by the controller.
  std::vector<double> estimates;

  std::uint64_t runs() const noexcept { return campaign.times.size(); }
};

} // namespace proxima::exec
