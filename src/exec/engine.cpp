#include "engine.hpp"

#include "casestudy/campaign_runner.hpp"
#include "obs/timeline.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace proxima::exec {

namespace {

unsigned hardware_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

using RunnerSlots = std::vector<std::unique_ptr<casestudy::CampaignRunner>>;

/// Per-worker wall-clock telemetry (observability only — gauge class, not
/// in the metrics digest).  Each worker writes its own slot; the engine
/// reads after the pool joins.  Accumulates across adaptive batches.
struct WorkerTelemetry {
  std::uint64_t runs = 0;
  double busy_us = 0.0;
};

double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Shared campaign state the workers cooperate on.  One `CampaignJob` is
/// one pass over a shard queue; `run_adaptive` creates a job per batch but
/// the runner slots (and their platform instances) persist across jobs.
struct CampaignJob {
  CampaignJob(const casestudy::CampaignConfig& config_in,
              const std::vector<ShardRange>& shards_in,
              casestudy::CampaignResult& result_in, ProgressMeter& meter_in,
              const ShardSink& sink_in, const SampleSink& sample_sink_in,
              std::stop_token external_in, RunnerSlots& runners_in,
              std::vector<WorkerTelemetry>* telemetry_in)
      : config(config_in), shards(shards_in), result(result_in),
        meter(meter_in), sink(sink_in), sample_sink(sample_sink_in),
        external(std::move(external_in)), runners(runners_in),
        telemetry(telemetry_in) {}

  const casestudy::CampaignConfig& config;
  const std::vector<ShardRange>& shards;
  casestudy::CampaignResult& result;   // times/samples pre-sized
  ProgressMeter& meter;
  const ShardSink& sink;
  const SampleSink& sample_sink;       // persistence; completed shards only
  const std::stop_token external;      // user cancellation
  RunnerSlots& runners;                // one slot per worker, caller-owned
  std::vector<WorkerTelemetry>* telemetry; // null unless metrics are on

  std::atomic<std::size_t> next_shard{0};
  std::atomic<std::uint64_t> runs_done{0};
  std::atomic<bool> fault{false};      // a worker threw

  std::mutex mutex; // guards sink calls and the error slot
  std::exception_ptr error;

  /// Checked before claiming a shard AND before every run: a fault or the
  /// external token must stop the pool promptly, not after the queue
  /// drains.
  bool cancelled() const {
    return fault.load(std::memory_order_relaxed) || external.stop_requested();
  }
};

/// One worker: own platform instance (slot-persistent), chunk-claiming loop.
void worker_main(CampaignJob& job, unsigned slot) {
  try {
    // The platform is built lazily: a worker that finds the queue already
    // drained never pays the program-build/link cost.
    std::unique_ptr<casestudy::CampaignRunner>& runner = job.runners[slot];
    while (!job.cancelled()) {
      const std::size_t shard_index =
          job.next_shard.fetch_add(1, std::memory_order_relaxed);
      if (shard_index >= job.shards.size()) {
        break;
      }
      if (!runner) {
        runner = std::make_unique<casestudy::CampaignRunner>(job.config);
      }
      const ShardRange shard = job.shards[shard_index];
      // Observability is fully gated: when neither tracing nor metrics are
      // on, the run loop takes no clock readings at all.
      obs::Timeline* const timeline = job.config.timeline;
      WorkerTelemetry* const telemetry =
          job.telemetry ? &(*job.telemetry)[slot] : nullptr;
      const bool timed = timeline != nullptr || telemetry != nullptr;
      // Per-run metric deltas buffered shard-locally for the sample sink:
      // the runner's scratch shard is overwritten every run, so a
      // persistence sink needs its own copy until the shard completes.
      std::vector<obs::MetricsShard> shard_metrics;
      const bool capture_metrics =
          static_cast<bool>(job.sample_sink) && job.config.collect_metrics;
      if (capture_metrics) {
        shard_metrics.reserve(static_cast<std::size_t>(shard.size()));
      }
      for (std::uint64_t index = shard.begin; index < shard.end; ++index) {
        if (job.cancelled()) {
          return; // cooperative stop mid-shard
        }
        std::chrono::steady_clock::time_point t0;
        double ts_us = 0.0;
        if (timed) {
          t0 = std::chrono::steady_clock::now();
          if (timeline != nullptr) {
            ts_us = timeline->now_us();
          }
        }
        const casestudy::RunSample sample = runner->run(index);
        if (timed) {
          const double dur_us = elapsed_us(t0);
          if (telemetry != nullptr) {
            ++telemetry->runs;
            telemetry->busy_us += dur_us;
          }
          if (timeline != nullptr) {
            timeline->record("engine", "worker-" + std::to_string(slot),
                             "run " + std::to_string(index), ts_us, dur_us);
          }
        }
        // Disjoint slots: no lock needed for the result vectors.
        job.result.times[index] = sample.uoa_cycles;
        job.result.samples[index] = sample;
        if (capture_metrics) {
          shard_metrics.push_back(runner->last_run_metrics());
        }
        job.runs_done.fetch_add(1, std::memory_order_relaxed);
        job.meter.add(1);
      }
      if (job.sink || job.sample_sink) {
        std::lock_guard<std::mutex> lock(job.mutex);
        if (job.sample_sink) {
          job.sample_sink(
              shard,
              std::span<const casestudy::RunSample>(
                  job.result.samples.data() + shard.begin,
                  static_cast<std::size_t>(shard.size())),
              std::span<const obs::MetricsShard>(shard_metrics));
        }
        if (job.sink) {
          job.sink(shard, std::span<const double>(
                              job.result.times.data() + shard.begin,
                              static_cast<std::size_t>(shard.size())));
        }
      }
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(job.mutex);
    if (!job.error) {
      job.error = std::current_exception();
    }
    job.fault.store(true, std::memory_order_relaxed);
  }
}

/// Run one shard queue to completion (or cancellation) on `workers`
/// threads.  Throws the first worker fault, or CampaignCancelled when the
/// external token stopped the pool before every planned run completed.
void execute_shards(const casestudy::CampaignConfig& config,
                    const std::vector<ShardRange>& shards, unsigned workers,
                    casestudy::CampaignResult& result, ProgressMeter& meter,
                    const ShardSink& sink, const SampleSink& sample_sink,
                    const std::stop_token& external, RunnerSlots& runners,
                    std::vector<WorkerTelemetry>* telemetry = nullptr) {
  CampaignJob job{config,      shards,   result,  meter,    sink,
                  sample_sink, external, runners, telemetry};
  if (workers == 1) {
    worker_main(job, 0); // no thread spawn for the sequential case
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back(worker_main, std::ref(job), w);
    }
    for (std::thread& thread : pool) {
      thread.join();
    }
  }
  if (job.error) {
    std::rethrow_exception(job.error);
  }
  std::uint64_t planned = 0;
  for (const ShardRange& shard : shards) {
    planned += shard.size();
  }
  if (job.runs_done.load(std::memory_order_relaxed) < planned) {
    // No worker threw, so the only way to fall short is the external token.
    throw CampaignCancelled{};
  }
}

/// Sum of golden-model verifications across the pool's runners.
std::uint64_t total_verified(const RunnerSlots& runners) {
  std::uint64_t verified = 0;
  for (const auto& runner : runners) {
    if (runner) {
      verified += runner->verified_runs();
    }
  }
  return verified;
}

/// Pass report + code size from any built runner (identical on every
/// worker: the build/link pipeline is deterministic for a given config).
void fill_metadata(const RunnerSlots& runners,
                   casestudy::CampaignResult& result) {
  for (const auto& runner : runners) {
    if (runner) {
      result.pass_report = runner->pass_report();
      result.code_bytes = runner->code_bytes();
      return;
    }
  }
}

/// Collection barrier: fold the per-worker metric shards into the result
/// (order-independent — counter sums, histogram folds) and attach the
/// engine's own wall-clock telemetry as gauges.  Runs strictly after the
/// pool has joined, so no shard is still being written.
void merge_metrics(const RunnerSlots& runners,
                   const std::vector<WorkerTelemetry>& telemetry,
                   unsigned workers, double wall_us,
                   casestudy::CampaignResult& result) {
  for (const auto& runner : runners) {
    if (runner) {
      result.metrics.merge_from(runner->metrics());
    }
  }
  result.metrics.set_gauge("engine.workers", static_cast<double>(workers));
  result.metrics.set_gauge("engine.wall_seconds", wall_us / 1e6);
  for (std::size_t slot = 0; slot < telemetry.size(); ++slot) {
    const std::string prefix = "engine.worker" + std::to_string(slot) + ".";
    result.metrics.set_gauge(prefix + "runs",
                             static_cast<double>(telemetry[slot].runs));
    result.metrics.set_gauge(prefix + "busy_seconds",
                             telemetry[slot].busy_us / 1e6);
    // Time a worker spent NOT running measurements (queue claims, runner
    // construction, join skew) — the utilisation gap at a glance.
    result.metrics.set_gauge(
        prefix + "queue_wait_seconds",
        std::max(0.0, (wall_us - telemetry[slot].busy_us) / 1e6));
  }
}

/// Shape-check a stored prefix against the config it will replay under.
void validate_prefix(const casestudy::CampaignConfig& config,
                     const StoredPrefix& prefix) {
  if (!prefix.run_metrics.empty() &&
      prefix.run_metrics.size() != prefix.samples.size()) {
    throw std::invalid_argument(
        "stored prefix: run_metrics must be empty or match samples");
  }
  if (!prefix.verified.empty() &&
      prefix.verified.size() != prefix.samples.size()) {
    throw std::invalid_argument(
        "stored prefix: verified flags must be empty or match samples");
  }
  if (config.collect_metrics && !prefix.samples.empty() &&
      prefix.run_metrics.empty()) {
    throw std::invalid_argument(
        "stored prefix: the campaign collects metrics but the prefix "
        "carries no per-run metric deltas (stored without "
        "collect_metrics?)");
  }
}

/// Copy prefix runs [begin, end) into the result's slots.  No execution:
/// a stored sample IS the run's output (pure function of the index).
void splice_prefix(const StoredPrefix& prefix, std::uint64_t begin,
                   std::uint64_t end, casestudy::CampaignResult& result) {
  for (std::uint64_t index = begin; index < end; ++index) {
    const auto slot = static_cast<std::size_t>(index);
    result.samples[slot] = prefix.samples[slot];
    result.times[slot] = prefix.samples[slot].uoa_cycles;
  }
}

/// Collection-barrier bookkeeping for the consumed part of the prefix:
/// fold its per-run metric deltas into the result shard (order-independent
/// merge — the same totals direct accumulation would have produced) and
/// credit its golden-model verifications.
void merge_prefix(const casestudy::CampaignConfig& config,
                  const StoredPrefix& prefix, std::uint64_t consumed,
                  casestudy::CampaignResult& result) {
  for (std::uint64_t index = 0; index < consumed; ++index) {
    const auto slot = static_cast<std::size_t>(index);
    if (config.collect_metrics) {
      result.metrics.merge_from(prefix.run_metrics[slot]);
    }
    if (!prefix.verified.empty() && prefix.verified[slot] != 0) {
      ++result.verified_runs;
    }
  }
}

} // namespace

CampaignEngine::CampaignEngine(EngineOptions options)
    : options_(std::move(options)) {}

CampaignEngine::Plan CampaignEngine::plan(std::uint64_t runs) const {
  const unsigned requested =
      options_.workers == 0 ? hardware_workers() : options_.workers;
  Plan plan;
  plan.shards = plan_shards(runs, requested, options_.sharding);
  plan.workers = static_cast<unsigned>(std::max<std::size_t>(
      1, std::min<std::size_t>(requested, plan.shards.size())));
  return plan;
}

unsigned CampaignEngine::resolved_workers(std::uint64_t runs) const {
  return plan(runs).workers;
}

casestudy::CampaignResult
CampaignEngine::run(const casestudy::CampaignConfig& config) const {
  return run(config, StoredPrefix{});
}

casestudy::CampaignResult
CampaignEngine::run(const casestudy::CampaignConfig& config,
                    const StoredPrefix& prefix) const {
  validate_prefix(config, prefix);
  casestudy::CampaignResult result;
  const std::uint64_t runs = config.runs;
  if (runs == 0) {
    // Match the sequential wrapper exactly: the platform is still built,
    // so the pass report and code size are populated.
    casestudy::CampaignRunner runner(config);
    result.pass_report = runner.pass_report();
    result.code_bytes = runner.code_bytes();
    if (options_.progress) {
      options_.progress(0, 0);
    }
    return result;
  }

  // Stored runs fill their slots directly; only the remainder executes.
  const std::uint64_t stored =
      std::min<std::uint64_t>(prefix.samples.size(), runs);
  result.times.resize(static_cast<std::size_t>(runs));
  result.samples.resize(static_cast<std::size_t>(runs));
  splice_prefix(prefix, 0, stored, result);
  ProgressMeter meter(runs, options_.progress);
  if (stored != 0) {
    meter.add(stored);
  }

  if (stored == runs) {
    // Fully served from the store: nothing executes, but the platform is
    // still built once so the report's pass/code metadata matches a live
    // run (the build pipeline is deterministic for a given config).
    casestudy::CampaignRunner runner(config);
    result.pass_report = runner.pass_report();
    result.code_bytes = runner.code_bytes();
    merge_prefix(config, prefix, stored, result);
    return result;
  }

  Plan execution_plan = plan(runs - stored);
  for (ShardRange& shard : execution_plan.shards) {
    shard.begin += stored;
    shard.end += stored;
  }
  RunnerSlots runners(execution_plan.workers);
  std::vector<WorkerTelemetry> telemetry(
      config.collect_metrics ? execution_plan.workers : 0);
  const auto wall_start = std::chrono::steady_clock::now();
  execute_shards(config, execution_plan.shards, execution_plan.workers,
                 result, meter, options_.shard_sink, options_.sample_sink,
                 options_.stop, runners,
                 config.collect_metrics ? &telemetry : nullptr);
  result.verified_runs = total_verified(runners);
  fill_metadata(runners, result);
  if (config.collect_metrics) {
    merge_metrics(runners, telemetry, execution_plan.workers,
                  elapsed_us(wall_start), result);
  }
  merge_prefix(config, prefix, stored, result);
  return result;
}

AdaptiveCampaignResult
CampaignEngine::run_adaptive(const casestudy::CampaignConfig& config,
                             const ConvergenceOptions& options) const {
  return run_adaptive(config, options, StoredPrefix{});
}

AdaptiveCampaignResult
CampaignEngine::run_adaptive(const casestudy::CampaignConfig& config,
                             const ConvergenceOptions& options,
                             const StoredPrefix& prefix) const {
  validate_prefix(config, prefix);
  if (options.batch_runs == 0) {
    throw std::invalid_argument("run_adaptive: batch_runs must be >= 1");
  }
  const std::uint64_t budget =
      options.max_runs == 0 ? config.runs : options.max_runs;
  if (budget == 0) {
    throw std::invalid_argument(
        "run_adaptive: the campaign budget (max_runs or config.runs) must "
        "be >= 1");
  }
  if (budget > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "run_adaptive: the campaign budget exceeds CampaignConfig::runs' "
        "32-bit range");
  }

  // Every batch executes against the same config so an adaptive stop at N
  // runs is bit-identical to a fixed N-run campaign; `runs` is the budget
  // so the runners' range check admits every batch index.
  casestudy::CampaignConfig run_config = config;
  run_config.runs = static_cast<std::uint32_t>(budget);

  AdaptiveCampaignResult out;
  casestudy::CampaignResult& campaign = out.campaign;
  mbpta::ConvergenceController controller(options.controller);
  ProgressMeter meter(budget, options_.progress);

  RunnerSlots runners; // persist across batches, grown to the widest batch
  std::vector<WorkerTelemetry> telemetry; // likewise, accumulated
  unsigned widest_workers = 1;
  const std::uint64_t stored =
      std::min<std::uint64_t>(prefix.samples.size(), budget);
  const auto wall_start = std::chrono::steady_clock::now();

  for (std::uint64_t begin = 0; begin < budget; begin += options.batch_runs) {
    const std::uint64_t end = std::min(budget, begin + options.batch_runs);
    campaign.times.resize(static_cast<std::size_t>(end));
    campaign.samples.resize(static_cast<std::size_t>(end));

    // Replay the stored part of this batch, execute only its uncovered
    // tail — the controller below cannot tell the difference.
    const std::uint64_t covered = std::min(stored, end);
    if (covered > begin) {
      splice_prefix(prefix, begin, covered, campaign);
      meter.add(covered - begin);
    }
    const std::uint64_t exec_begin = std::max(begin, covered);
    if (exec_begin < end) {
      // Shard the executed tail only (same worker-resolution policy as
      // `run`); the plan is deterministic and the offsets put it at
      // [exec_begin, end) of the global run-index space.
      Plan batch_plan = plan(end - exec_begin);
      for (ShardRange& shard : batch_plan.shards) {
        shard.begin += exec_begin;
        shard.end += exec_begin;
      }
      if (runners.size() < batch_plan.workers) {
        runners.resize(batch_plan.workers);
      }
      widest_workers = std::max(widest_workers, batch_plan.workers);
      if (config.collect_metrics && telemetry.size() < batch_plan.workers) {
        telemetry.resize(batch_plan.workers);
      }
      const double batch_ts_us =
          config.timeline != nullptr ? config.timeline->now_us() : 0.0;
      const auto batch_start = std::chrono::steady_clock::now();
      execute_shards(run_config, batch_plan.shards, batch_plan.workers,
                     campaign, meter, options_.shard_sink,
                     options_.sample_sink, options_.stop, runners,
                     config.collect_metrics ? &telemetry : nullptr);
      if (config.timeline != nullptr) {
        config.timeline->record(
            "engine", "batches",
            "batch " + std::to_string(out.batches) + " [" +
                std::to_string(exec_begin) + ", " + std::to_string(end) + ")",
            batch_ts_us, elapsed_us(batch_start));
      }
    }

    // Deterministic batch boundary: the controller sees this batch in
    // run-index order, exactly once, regardless of which worker completed
    // which shard when — the stop decision cannot depend on scheduling.
    ++out.batches;
    const bool done = controller.add_batch(std::span<const double>(
        campaign.times.data() + begin,
        static_cast<std::size_t>(end - begin)));
    if (done) {
      break;
    }
  }

  out.converged = controller.converged();
  out.capped = !out.converged; // controller cap or budget exhaustion
  out.estimates = controller.estimates();
  campaign.verified_runs = total_verified(runners);
  fill_metadata(runners, campaign);
  if (campaign.code_bytes == 0) {
    // Every batch was served from the prefix — no worker ever built a
    // platform.  Build one for the pass/code metadata, as `run` does.
    casestudy::CampaignRunner runner(run_config);
    campaign.pass_report = runner.pass_report();
    campaign.code_bytes = runner.code_bytes();
  }
  merge_prefix(config, prefix,
               std::min<std::uint64_t>(stored, campaign.times.size()),
               campaign);
  if (config.collect_metrics) {
    merge_metrics(runners, telemetry, widest_workers, elapsed_us(wall_start),
                  campaign);
    // The convergence trajectory is computed at deterministic batch
    // boundaries from deterministic samples: series class, in the digest.
    campaign.metrics.set_series("engine.pwcet_estimates", out.estimates);
    campaign.metrics.set_gauge("engine.batches",
                               static_cast<double>(out.batches));
  }
  return out;
}

} // namespace proxima::exec
