#include "engine.hpp"

#include "casestudy/campaign_runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace proxima::exec {

namespace {

unsigned hardware_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Shared campaign state the workers cooperate on.
struct CampaignJob {
  CampaignJob(const casestudy::CampaignConfig& config_in,
              const std::vector<ShardRange>& shards_in,
              casestudy::CampaignResult& result_in, ProgressMeter& meter_in,
              const ShardSink& sink_in)
      : config(config_in), shards(shards_in), result(result_in),
        meter(meter_in), sink(sink_in) {}

  const casestudy::CampaignConfig& config;
  const std::vector<ShardRange>& shards;
  casestudy::CampaignResult& result;   // times/samples pre-sized
  ProgressMeter& meter;
  const ShardSink& sink;

  std::atomic<std::size_t> next_shard{0};
  std::atomic<bool> abort{false};

  std::mutex mutex; // guards sink calls, metadata, verified_runs, error
  bool metadata_set = false;
  std::uint64_t verified_runs = 0;
  std::exception_ptr error;
};

/// One worker: own platform instance, chunk-claiming loop.
void worker_main(CampaignJob& job) {
  try {
    // The platform is built lazily: a worker that finds the queue already
    // drained never pays the program-build/link cost.
    std::unique_ptr<casestudy::CampaignRunner> runner;
    while (!job.abort.load(std::memory_order_relaxed)) {
      const std::size_t shard_index =
          job.next_shard.fetch_add(1, std::memory_order_relaxed);
      if (shard_index >= job.shards.size()) {
        break;
      }
      if (!runner) {
        runner = std::make_unique<casestudy::CampaignRunner>(job.config);
      }
      const ShardRange shard = job.shards[shard_index];
      for (std::uint64_t index = shard.begin; index < shard.end; ++index) {
        const casestudy::RunSample sample = runner->run(index);
        // Disjoint slots: no lock needed for the result vectors.
        job.result.times[index] = sample.uoa_cycles;
        job.result.samples[index] = sample;
      }
      job.meter.add(shard.size());
      if (job.sink) {
        std::lock_guard<std::mutex> lock(job.mutex);
        job.sink(shard, std::span<const double>(
                            job.result.times.data() + shard.begin,
                            static_cast<std::size_t>(shard.size())));
      }
    }
    if (runner) {
      std::lock_guard<std::mutex> lock(job.mutex);
      job.verified_runs += runner->verified_runs();
      if (!job.metadata_set) {
        // Identical on every worker: the build/link pipeline is
        // deterministic for a given config.
        job.result.pass_report = runner->pass_report();
        job.result.code_bytes = runner->code_bytes();
        job.metadata_set = true;
      }
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(job.mutex);
    if (!job.error) {
      job.error = std::current_exception();
    }
    job.abort.store(true, std::memory_order_relaxed);
  }
}

} // namespace

CampaignEngine::CampaignEngine(EngineOptions options)
    : options_(std::move(options)) {}

CampaignEngine::Plan CampaignEngine::plan(std::uint64_t runs) const {
  const unsigned requested =
      options_.workers == 0 ? hardware_workers() : options_.workers;
  Plan plan;
  plan.shards = plan_shards(runs, requested, options_.sharding);
  plan.workers = static_cast<unsigned>(std::max<std::size_t>(
      1, std::min<std::size_t>(requested, plan.shards.size())));
  return plan;
}

unsigned CampaignEngine::resolved_workers(std::uint64_t runs) const {
  return plan(runs).workers;
}

casestudy::CampaignResult
CampaignEngine::run(const casestudy::CampaignConfig& config) const {
  casestudy::CampaignResult result;
  const std::uint64_t runs = config.runs;
  if (runs == 0) {
    // Match the sequential wrapper exactly: the platform is still built,
    // so the pass report and code size are populated.
    casestudy::CampaignRunner runner(config);
    result.pass_report = runner.pass_report();
    result.code_bytes = runner.code_bytes();
    if (options_.progress) {
      options_.progress(0, 0);
    }
    return result;
  }

  const Plan execution_plan = plan(runs);
  const std::vector<ShardRange>& shards = execution_plan.shards;
  const unsigned workers = execution_plan.workers;

  result.times.resize(static_cast<std::size_t>(runs));
  result.samples.resize(static_cast<std::size_t>(runs));
  ProgressMeter meter(runs, options_.progress);
  CampaignJob job{config, shards, result, meter, options_.shard_sink};

  if (workers == 1) {
    worker_main(job); // no thread spawn for the sequential case
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back(worker_main, std::ref(job));
    }
    for (std::thread& thread : pool) {
      thread.join();
    }
  }
  if (job.error) {
    std::rethrow_exception(job.error);
  }
  result.verified_runs = job.verified_runs;
  return result;
}

} // namespace proxima::exec
