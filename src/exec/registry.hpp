// Scenario registry: named, runnable measurement workloads.
//
// Campaigns, benches and examples used to hand-roll `CampaignConfig`s;
// the registry names them once so every consumer enumerates the same
// catalogue: the paper's operation-like and analysis-like protocols for
// each randomisation technology (COTS / DSR / static re-link / hardware
// time-randomised caches) plus the layout, PRNG and offset-range sweeps
// and the fixed-input stress scenarios of the ablation study.  Three
// families: `control/` (the control task on the bare platform), `image/`
// (the input-dependent-duration image task as the measured workload), and
// `hv/` (hypervisor campaigns, named `<measured>+<guest>`).
//
// The registry is append-only and thread-safe: workloads may be registered
// and looked up concurrently.  `Scenario` references obtained from lookups
// stay valid for the registry's lifetime.
#pragma once

#include "casestudy/campaign.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace proxima::exec {

struct Scenario {
  /// Hierarchical name, e.g. "control/operation-dsr".
  std::string name;
  /// One-line human description (printed by benches and catalogues).
  std::string description;
  /// Build the campaign configuration for the requested number of
  /// measured runs.  Must be pure (no shared state): the engine may call
  /// it from any thread.
  std::function<casestudy::CampaignConfig(std::uint32_t runs)> make_config;
};

class ScenarioRegistry {
public:
  /// Register a scenario.  Throws std::invalid_argument on an empty name,
  /// a missing factory, or a duplicate.
  void add(Scenario scenario);

  bool contains(std::string_view name) const;

  /// nullptr when absent.  The pointer stays valid for the registry's
  /// lifetime (append-only, node-based storage).
  const Scenario* find(std::string_view name) const;

  /// Lookup that throws std::out_of_range listing the known names —
  /// the error a user sees after a typo on a bench command line.
  const Scenario& at(std::string_view name) const;

  /// All names, sorted; with `prefix`, only names starting with it
  /// (e.g. "control/analysis-").
  std::vector<std::string> names(std::string_view prefix = {}) const;

  std::size_t size() const;

  /// The process-wide registry, pre-populated with the default scenario
  /// catalogue below.
  static ScenarioRegistry& global();

private:
  mutable std::mutex mutex_;
  std::map<std::string, Scenario, std::less<>> scenarios_;
};

/// Register the built-in catalogue into `registry` (used by `global()`;
/// callable on a fresh registry in tests).
void register_default_scenarios(ScenarioRegistry& registry);

} // namespace proxima::exec
