#include "shard.hpp"

#include <algorithm>
#include <stdexcept>

namespace proxima::exec {

std::vector<ShardRange> plan_shards(std::uint64_t runs, unsigned workers,
                                    const ShardOptions& options) {
  if (workers == 0) {
    throw std::invalid_argument("plan_shards: workers must be >= 1");
  }
  std::vector<ShardRange> plan;
  if (runs == 0) {
    return plan;
  }
  const std::uint64_t min_chunk = std::max<std::uint64_t>(1, options.min_chunk);
  const std::uint64_t target_chunks =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(workers) *
                                     std::max(1u, options.chunks_per_worker));
  // Chunk size honouring the floor; the last chunk absorbs the remainder's
  // final partial piece.
  const std::uint64_t chunk =
      std::max(min_chunk, (runs + target_chunks - 1) / target_chunks);
  plan.reserve(static_cast<std::size_t>((runs + chunk - 1) / chunk));
  for (std::uint64_t begin = 0; begin < runs; begin += chunk) {
    plan.push_back(ShardRange{begin, std::min(runs, begin + chunk)});
  }
  // An undersized tail would defeat the min_chunk floor: fold it into its
  // predecessor.
  if (plan.size() >= 2 && plan.back().size() < min_chunk) {
    plan[plan.size() - 2].end = plan.back().end;
    plan.pop_back();
  }
  return plan;
}

} // namespace proxima::exec
