// Thread-safe campaign progress accounting.
//
// Workers report completed shards; the meter aggregates and forwards the
// running total to a user callback (rendering, logging, convergence
// control).  Callbacks are invoked under the meter's lock, so they are
// naturally serialised — keep them short.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

namespace proxima::exec {

/// completed / total measured runs.
using ProgressFn = std::function<void(std::uint64_t completed,
                                      std::uint64_t total)>;

class ProgressMeter {
public:
  ProgressMeter(std::uint64_t total, ProgressFn callback)
      : total_(total), callback_(std::move(callback)) {}

  /// Record `runs` newly completed runs and notify the callback.
  void add(std::uint64_t runs) {
    std::lock_guard<std::mutex> lock(mutex_);
    completed_ += runs;
    if (callback_) {
      callback_(completed_, total_);
    }
  }

  std::uint64_t completed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return completed_;
  }

  std::uint64_t total() const noexcept { return total_; }

private:
  mutable std::mutex mutex_;
  std::uint64_t completed_ = 0;
  const std::uint64_t total_;
  ProgressFn callback_;
};

} // namespace proxima::exec
