// Thread-safe campaign progress accounting.
//
// Workers report completed shards; the meter aggregates and forwards the
// running total to a user callback (rendering, logging, convergence
// control).  The callback is invoked OUTSIDE the meter's lock: a slow
// callback (terminal writes, a UI hop) must never serialise the worker
// pool behind it, and a callback that re-enters the meter (reads
// completed()) must not deadlock.  Invocations are still serialised — at
// most one callback is in flight at a time — and coalesced: counts
// arriving while a callback runs are folded into one trailing invocation,
// so the callback always ends up seeing the latest total but is not
// called once per run under contention.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

namespace proxima::exec {

/// completed / total measured runs.
using ProgressFn = std::function<void(std::uint64_t completed,
                                      std::uint64_t total)>;

class ProgressMeter {
public:
  ProgressMeter(std::uint64_t total, ProgressFn callback)
      : total_(total), callback_(std::move(callback)) {}

  /// Record `runs` newly completed runs and notify the callback
  /// (serialised, lock-free from the callback's point of view, coalesced
  /// under contention; the final count is always delivered).
  void add(std::uint64_t runs) {
    std::uint64_t snapshot;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      completed_ += runs;
      if (!callback_) {
        return;
      }
      if (in_flight_) {
        // Another thread is inside the callback: it will pick this update
        // up in its trailing invocation.
        pending_ = true;
        return;
      }
      in_flight_ = true;
      snapshot = completed_;
    }
    for (;;) {
      callback_(snapshot, total_);
      std::lock_guard<std::mutex> lock(mutex_);
      if (!pending_) {
        in_flight_ = false;
        return;
      }
      pending_ = false;
      snapshot = completed_;
    }
  }

  std::uint64_t completed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return completed_;
  }

  std::uint64_t total() const noexcept { return total_; }

private:
  mutable std::mutex mutex_;
  std::uint64_t completed_ = 0;
  bool in_flight_ = false; // a thread is currently invoking the callback
  bool pending_ = false;   // updates arrived while the callback ran
  const std::uint64_t total_;
  ProgressFn callback_;
};

} // namespace proxima::exec
