// Parallel campaign execution engine.
//
// Shards a `CampaignConfig`'s measured runs across N workers.  Each worker
// owns a fully isolated platform instance (guest memory + cache hierarchy
// + VM + trace buffer + DSR runtime) wrapped in a
// `casestudy::CampaignRunner`, and claims contiguous chunks of run indices
// from a shared queue.  Because every run's randomness is derived from
// (seed, stream, activation index) — see exec/seed.hpp — the assembled
// `CampaignResult.times`/`samples` are bit-identical to the sequential
// `run_control_campaign` regardless of worker count or scheduling order.
//
// Completed shards can be streamed to a sink while the campaign is still
// running (e.g. to feed `mbpta::ConvergenceController` with measurement
// batches), and a progress callback reports the running completed/total
// counts.
#pragma once

#include "casestudy/campaign.hpp"
#include "exec/progress.hpp"
#include "exec/shard.hpp"

#include <cstdint>
#include <functional>
#include <span>

namespace proxima::exec {

/// Streaming per-shard aggregation: invoked once per completed shard with
/// the shard's UoA times in run-index order.  Shards arrive in completion
/// order (not index order) but carry their range; calls are serialised by
/// the engine.  Typical use: `controller.add_batch(times)` for the MBPTA
/// convergence loop.
using ShardSink = std::function<void(const ShardRange& range,
                                     std::span<const double> times)>;

struct EngineOptions {
  /// Worker threads; 0 picks the hardware concurrency.  The effective
  /// count never exceeds the number of planned shards.
  unsigned workers = 0;
  ShardOptions sharding;
  ProgressFn progress;   // optional completed/total callback
  ShardSink shard_sink;  // optional streaming aggregation
};

class CampaignEngine {
public:
  explicit CampaignEngine(EngineOptions options = {});

  /// Execute the campaign across the configured workers.  Rethrows the
  /// first worker fault (functional mismatch, platform fault) after all
  /// workers have stopped.
  casestudy::CampaignResult run(const casestudy::CampaignConfig& config) const;

  /// The worker count `run` would use for a campaign of `runs` runs.
  unsigned resolved_workers(std::uint64_t runs) const;

  const EngineOptions& options() const noexcept { return options_; }

private:
  struct Plan {
    std::vector<ShardRange> shards;
    unsigned workers = 1;
  };
  Plan plan(std::uint64_t runs) const;

  EngineOptions options_;
};

} // namespace proxima::exec
