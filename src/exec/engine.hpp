// Parallel campaign execution engine.
//
// Shards a `CampaignConfig`'s measured runs across N workers.  Each worker
// owns a fully isolated platform instance (guest memory + cache hierarchy
// + VM + trace buffer + DSR runtime) wrapped in a
// `casestudy::CampaignRunner`, and claims contiguous chunks of run indices
// from a shared queue.  Because every run's randomness is derived from
// (seed, stream, activation index) — see exec/seed.hpp — the assembled
// `CampaignResult.times`/`samples` are bit-identical to the sequential
// `run_control_campaign` regardless of worker count or scheduling order.
//
// Completed shards can be streamed to a sink while the campaign is still
// running (e.g. to feed `mbpta::ConvergenceController` with measurement
// batches), and a progress callback reports the running completed/total
// counts.
//
// Cancellation is cooperative: workers re-check a stop condition before
// claiming a shard AND before every run inside a shard, so both a worker
// fault (internal) and `EngineOptions::stop` (external) halt the pool
// promptly instead of letting healthy workers drain the remaining queue.
#pragma once

#include "casestudy/campaign.hpp"
#include "exec/adaptive.hpp"
#include "exec/progress.hpp"
#include "exec/shard.hpp"
#include "obs/metrics.hpp"

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <stop_token>

namespace proxima::exec {

/// Streaming per-shard aggregation: invoked once per completed shard with
/// the shard's UoA times in run-index order.  Shards arrive in completion
/// order (not index order) but carry their range; calls are serialised by
/// the engine.
using ShardSink = std::function<void(const ShardRange& range,
                                     std::span<const double> times)>;

/// Streaming per-shard persistence (the campaign store): invoked once per
/// COMPLETED shard with the shard's full `RunSample`s in run-index order,
/// plus — when the campaign collects metrics — the per-run metric deltas
/// each sample contributed (`run_metrics[i]` belongs to run
/// `range.begin + i`; the span is empty otherwise).  Calls are serialised
/// by the engine.  A shard interrupted by a fault or cancellation is never
/// emitted, so everything a sink persists is a valid contiguous record of
/// the runs it covers — the property that makes resume-from-prefix sound.
using SampleSink =
    std::function<void(const ShardRange& range,
                       std::span<const casestudy::RunSample> samples,
                       std::span<const obs::MetricsShard> run_metrics)>;

/// An already-materialised prefix of a campaign (from the on-disk store):
/// samples for run indices [0, samples.size()).  `run_metrics` is empty or
/// holds one per-run metrics delta per sample (required when the replayed
/// config collects metrics); `verified` is empty or holds one golden-model
/// verification flag per sample.  Because every run is a pure function of
/// its index, splicing a stored prefix in front of freshly executed
/// remainder runs reproduces the uninterrupted campaign bit-for-bit.
struct StoredPrefix {
  std::span<const casestudy::RunSample> samples;
  std::span<const obs::MetricsShard> run_metrics;
  std::span<const std::uint8_t> verified;
};

/// Thrown by `run`/`run_adaptive` when `EngineOptions::stop` fires before
/// the campaign completes: a cancelled campaign must never be mistaken for
/// a complete one.
struct CampaignCancelled : std::runtime_error {
  CampaignCancelled()
      : std::runtime_error("campaign cancelled: stop token fired before "
                           "every planned run completed") {}
};

struct EngineOptions {
  /// Worker threads; 0 picks the hardware concurrency.  The effective
  /// count never exceeds the number of planned shards.
  unsigned workers = 0;
  ShardOptions sharding;
  ProgressFn progress;    // optional completed/total callback
  ShardSink shard_sink;   // optional streaming aggregation
  SampleSink sample_sink; // optional streaming persistence (campaign store)
  /// Optional external cancellation: when the token fires, workers stop at
  /// the next per-run check and the engine throws `CampaignCancelled`
  /// (unless the campaign had already completed).  A default-constructed
  /// token never fires.
  std::stop_token stop;
};

class CampaignEngine {
public:
  explicit CampaignEngine(EngineOptions options = {});

  /// Execute the campaign across the configured workers.  Rethrows the
  /// first worker fault (functional mismatch, platform fault) after all
  /// workers have stopped — promptly: the fault cancels the pool, it does
  /// not wait for the queue to drain.
  casestudy::CampaignResult run(const casestudy::CampaignConfig& config) const;

  /// `run`, resuming from a stored prefix: result slots [0, n) are filled
  /// from `prefix` (n = min(prefix size, config.runs)) without executing
  /// them, only [n, runs) is sharded across the pool, and the prefix's
  /// per-run metric deltas / verification flags are folded into the result
  /// at the collection barrier.  Bit-identical times/samples/metrics
  /// digests to an uninterrupted `run` at any worker count.  The
  /// sample_sink only sees freshly executed shards; the shard_sink
  /// likewise (a resuming aggregator already holds the prefix).  A prefix
  /// covering every run executes nothing (the platform is still built once
  /// for the pass report / code size).
  casestudy::CampaignResult run(const casestudy::CampaignConfig& config,
                                const StoredPrefix& prefix) const;

  /// Execute the campaign adaptively: grow in `options.batch_runs`-sized
  /// batches, feed each completed batch (in run-index order) to an
  /// `mbpta::ConvergenceController`, and stop at the first batch boundary
  /// where the controller reports completion — convergence or its
  /// non-convergence cap — or at the `max_runs` budget.  `config.runs` is
  /// ignored except as the default budget (see ConvergenceOptions).
  /// Deterministic: for a given config + options the result is
  /// bit-identical at any worker count, and equal to a fixed campaign of
  /// the same length.  Per-worker platforms persist across batches, so
  /// growing costs no extra program builds.
  AdaptiveCampaignResult
  run_adaptive(const casestudy::CampaignConfig& config,
               const ConvergenceOptions& options) const;

  /// `run_adaptive`, resuming from a stored prefix.  Batches fully covered
  /// by the prefix are replayed straight into the controller without
  /// executing anything; a batch the prefix covers partially executes only
  /// its uncovered tail.  The controller still sees every batch in
  /// run-index order at the same deterministic boundaries, so the stop
  /// decision — and therefore the final length, estimates, and digests —
  /// matches the uninterrupted campaign exactly.  Prefix samples beyond
  /// the batch where the controller stops are left unconsumed.
  AdaptiveCampaignResult
  run_adaptive(const casestudy::CampaignConfig& config,
               const ConvergenceOptions& options,
               const StoredPrefix& prefix) const;

  /// The worker count `run` would use for a campaign of `runs` runs.
  unsigned resolved_workers(std::uint64_t runs) const;

  const EngineOptions& options() const noexcept { return options_; }

private:
  struct Plan {
    std::vector<ShardRange> shards;
    unsigned workers = 1;
  };
  Plan plan(std::uint64_t runs) const;

  EngineOptions options_;
};

} // namespace proxima::exec
