// Deterministic sharding of a campaign's run indices.
//
// A campaign of `runs` measured runs is cut into contiguous chunks that
// workers claim from a shared queue.  The *plan* is a pure function of
// (runs, workers, options) — which worker ends up executing which chunk is
// scheduling-dependent, but since every run is a pure function of its
// index (see campaign_runner.hpp) the aggregated result is not.
//
// Chunks are oversubscribed (several per worker) so the pool self-balances
// when run durations vary — the work-stealing effect without per-run
// queue traffic.
#pragma once

#include <cstdint>
#include <vector>

namespace proxima::exec {

/// Half-open range of measured-run indices [begin, end).
struct ShardRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  std::uint64_t size() const noexcept { return end - begin; }

  friend bool operator==(const ShardRange&, const ShardRange&) = default;
};

struct ShardOptions {
  /// Smallest chunk worth dispatching (amortises per-chunk overhead such
  /// as the input-stream catch-up replay at a shard boundary).
  std::uint64_t min_chunk = 1;
  /// Target chunks per worker: >1 lets fast workers steal the tail of the
  /// queue from slow ones.
  unsigned chunks_per_worker = 4;
};

/// Cut [0, runs) into ascending, disjoint, covering chunks.  Returns an
/// empty plan for runs == 0.  Deterministic.
std::vector<ShardRange> plan_shards(std::uint64_t runs, unsigned workers,
                                    const ShardOptions& options = {});

} // namespace proxima::exec
