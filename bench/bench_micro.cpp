// A7 — Component microbenchmarks (google-benchmark).
//
// Host-side performance of the reproduction's building blocks: simulator
// instruction throughput, cache-model access rate, the MWC/LFSR sources,
// and the statistical machinery.  These bound how large a measurement
// campaign the harness can sustain.
#include "casestudy/control_task.hpp"
#include "isa/builder.hpp"
#include "isa/linker.hpp"
#include "mbpta/mbpta.hpp"
#include "mem/hierarchy.hpp"
#include "rng/distributions.hpp"
#include "rng/lfsr.hpp"
#include "rng/mwc.hpp"
#include "vm/vm.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace proxima;

void BM_MwcNextU32(benchmark::State& state) {
  rng::Mwc mwc(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mwc.next_u32());
  }
}
BENCHMARK(BM_MwcNextU32);

void BM_LfsrNextU32(benchmark::State& state) {
  rng::Lfsr lfsr(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lfsr.next_u32());
  }
}
BENCHMARK(BM_LfsrNextU32);

void BM_CacheReadHit(benchmark::State& state) {
  mem::Cache cache(mem::leon3_hierarchy_config().dl1);
  cache.read(0x1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.read(0x1000));
  }
}
BENCHMARK(BM_CacheReadHit);

void BM_HierarchyLoadStream(benchmark::State& state) {
  mem::MemoryHierarchy hierarchy(mem::leon3_hierarchy_config());
  std::uint32_t addr = 0x40000000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy.load(addr));
    addr += 32;
  }
}
BENCHMARK(BM_HierarchyLoadStream);

void BM_VmInstructionThroughput(benchmark::State& state) {
  // A tight arithmetic loop: measures simulated instructions per second.
  isa::Program program;
  isa::FunctionBuilder fb("main");
  fb.li(isa::kO0, 1000000000);
  fb.label("top");
  fb.subcci(isa::kO0, 1);
  fb.subi(isa::kO0, isa::kO0, 1);
  fb.bg("top");
  fb.halt();
  program.functions.push_back(std::move(fb).build());
  program.entry = "main";
  const isa::LinkedImage image = isa::link(program);

  mem::GuestMemory memory;
  mem::MemoryHierarchy hierarchy(mem::leon3_hierarchy_config());
  vm::Vm cpu(memory, hierarchy);
  image.load_into(memory);
  cpu.reset(image.entry_addr(), 0x40800000);

  std::uint64_t executed = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1000 && !cpu.halted(); ++i) {
      cpu.step();
    }
    executed += 1000;
  }
  state.counters["sim_instr/s"] = benchmark::Counter(
      static_cast<double>(executed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmInstructionThroughput);

void BM_ControlTaskActivation(benchmark::State& state) {
  using namespace proxima::casestudy;
  const ControlParams params;
  isa::Program program = build_control_program(params);
  const isa::LinkedImage image =
      isa::link(program, control_layout(params, Layout::kCotsBad, 0x40800000));
  mem::GuestMemory memory;
  mem::MemoryHierarchy hierarchy(mem::leon3_hierarchy_config());
  vm::Vm cpu(memory, hierarchy);
  image.load_into(memory);
  rng::Mwc random(1);
  ControlInputs inputs = initial_control_inputs(params);
  refresh_control_inputs(random, params, inputs);
  stage_control_inputs(memory, image, inputs);
  for (auto _ : state) {
    hierarchy.flush_all();
    cpu.reset(image.entry_addr(), 0x40800000);
    benchmark::DoNotOptimize(cpu.run());
  }
}
BENCHMARK(BM_ControlTaskActivation)->Unit(benchmark::kMillisecond);

void BM_LjungBox(benchmark::State& state) {
  rng::Mwc mwc(1);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    samples.push_back(rng::sample_gumbel(mwc, 1000.0, 10.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mbpta::ljung_box(samples, 20));
  }
}
BENCHMARK(BM_LjungBox);

void BM_GumbelFit(benchmark::State& state) {
  rng::Mwc mwc(2);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    samples.push_back(rng::sample_gumbel(mwc, 1000.0, 10.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mbpta::PwcetModel::fit_block_maxima(samples, 50));
  }
}
BENCHMARK(BM_GumbelFit);

} // namespace

BENCHMARK_MAIN();
