// E5 — Section VI margin comparison.
//
// Paper: "The pWCET estimates for DSR are close to the MOET and well under
// the 20% margin.  In particular, the pWCET estimation at 1e-15 is only
// 0.2% higher than the MOET observed with DSR enabled ... When this is
// compared with the current industrial practice adding an engineering
// margin of 20% over the MOET of the non-randomised application, it
// results in a 19.6% tighter WCET prediction."
#include "bench_util.hpp"
#include "trace/report.hpp"

using namespace proxima;
using namespace proxima::bench;
using namespace proxima::casestudy;

int main() {
  const std::uint32_t runs = campaign_runs(1000);
  print_header("WCET bounds: MBPTA (DSR) vs industrial margin (" +
               std::to_string(runs) + " runs)");

  // Current practice: stress scenario on the COTS platform, MOET + 20%.
  // Both campaigns are registry scenarios on the parallel engine.
  const TimedCampaign cots_timed =
      run_scenario_timed("control/analysis-cots", std::max(50u, runs / 10));
  const CampaignResult& cots = cots_timed.result;
  const trace::TimingReport cots_report =
      trace::TimingReport::from_times(cots.times);

  // MBPTA: DSR measurement campaign, EVT fit, pWCET at 1e-15.
  const TimedCampaign dsr_timed = run_scenario_timed("control/analysis-dsr", runs);
  const CampaignResult& dsr = dsr_timed.result;
  print_throughput("analysis-cots campaign", cots_timed);
  print_throughput("analysis-dsr campaign", dsr_timed);
  const mbpta::MbptaAnalysis analysis =
      mbpta::analyse(dsr.times, analysis_mbpta(runs));
  const double pwcet = analysis.pwcet(1e-15);
  const double margin_bound = cots_report.mbdta_bound();

  std::printf("COTS stress MOET:               %10.0f cycles\n",
              cots_report.moet());
  std::printf("industrial bound (MOET + 20%%):  %10.0f cycles\n",
              margin_bound);
  std::printf("DSR MOET:                       %10.0f cycles\n",
              analysis.summary.max);
  std::printf("MBPTA pWCET @ 1e-15:            %10.0f cycles\n", pwcet);
  std::printf("\npWCET vs DSR MOET:    %+.2f%%   (paper: +0.2%%)\n",
              100.0 * (pwcet / analysis.summary.max - 1.0));
  std::printf("pWCET vs margin bound: %.1f%% tighter  (paper: 19.6%% tighter)\n",
              100.0 * (1.0 - pwcet / margin_bound));
  std::printf("\ni.i.d. verdict backing the estimate: %s\n",
              analysis.applicable() ? "PASS" : "FAIL");

  const bool tighter = pwcet < margin_bound;
  const bool bounds = pwcet > analysis.summary.max;
  std::printf("shape check: MOET < pWCET < MOET_COTS + 20%%: %s\n",
              (tighter && bounds) ? "yes" : "NO");
  return (tighter && bounds && analysis.applicable()) ? 0 : 1;
}
