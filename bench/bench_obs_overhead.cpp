// Observability overhead gate: the metrics registry must be (near) free.
//
// Runs the operation-like control-task campaign sequentially three ways —
// metrics off, metrics on, metrics off again — interleaved round-robin, so
// machine drift (frequency scaling, a co-tenant waking up) lands on every
// leg instead of biasing whichever block ran last.  Each round yields a
// *paired* overhead sample (the on leg against the better of its two
// neighbouring off legs) and a paired off-vs-off noise sample.  The gate
// judges the lower of two estimators — the median paired round and the
// best-of ratio across rounds: timing noise only ever adds time, so the
// lower reading is the tighter upper bound on the true cost, and a real
// regression inflates both.  The design claim under test:
//
//   * metrics OFF is the fast-VM hot path with a single hoisted
//     never-taken null check — indistinguishable from the pre-obs build;
//   * metrics ON costs one array increment per retired instruction plus a
//     per-run delta fold — bounded here at PROXIMA_OBS_GATE_PCT percent
//     (default 2) of instructions/second.
//
// The gate cannot resolve below the measurement's own noise: when the
// median off-vs-off spread already exceeds the gate, the effective gate
// widens to that floor (printed, so a noisy pass is visible as such).
//
// The campaign results must also be bit-identical with metrics on and off
// (same times digest): telemetry must never perturb simulated time.
//
// Exit status: 0 iff the times match AND the median metrics-on overhead
// is within the effective gate.
#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "trace/report.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <vector>

using namespace proxima;
using namespace proxima::bench;
using namespace proxima::casestudy;

namespace {

double gate_pct() {
  if (const char* env = std::getenv("PROXIMA_OBS_GATE_PCT")) {
    const double value = std::strtod(env, nullptr);
    if (value > 0.0) {
      return value;
    }
  }
  return 2.0;
}

/// One timed sequential campaign.
double timed_run(const CampaignConfig& config, CampaignResult& out) {
  const auto start = std::chrono::steady_clock::now();
  out = run_control_campaign(config);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double median(std::vector<double> values) {
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

} // namespace

int main() {
  const std::uint32_t runs = campaign_runs(200);
  const int rounds = 7;
  const double gate = gate_pct();
  print_header("Observability overhead: metrics registry on vs off (" +
               std::to_string(runs) + " runs, " + std::to_string(rounds) +
               " interleaved rounds, sequential)");

  const CampaignConfig base = exec::ScenarioRegistry::global()
                                  .at("control/operation-cots")
                                  .make_config(runs);
  CampaignConfig with_metrics = base;
  with_metrics.collect_metrics = true;

  CampaignResult off_result, on_result;
  std::vector<double> overhead_samples, noise_samples;
  double best_off = 0.0, best_on = 0.0;
  std::printf("%-8s %12s %12s %12s %12s %10s\n", "round", "off s", "on s",
              "off s", "overhead%", "noise%");
  for (int round = 0; round < rounds; ++round) {
    const double off_a = timed_run(base, off_result);
    const double on = timed_run(with_metrics, on_result);
    const double off_b = timed_run(base, off_result);
    const double off = std::min(off_a, off_b);
    const double overhead = 100.0 * (on / off - 1.0);
    const double noise =
        100.0 * (std::max(off_a, off_b) / std::min(off_a, off_b) - 1.0);
    overhead_samples.push_back(overhead);
    noise_samples.push_back(noise);
    if (best_off == 0.0 || off < best_off) {
      best_off = off;
    }
    if (best_on == 0.0 || on < best_on) {
      best_on = on;
    }
    std::printf("%-8d %12.3f %12.3f %12.3f %+12.2f %10.2f\n", round, off_a,
                on, off_b, overhead, noise);
  }

  const double instr = static_cast<double>(guest_instructions(off_result));
  std::printf("\nbest-of throughput: off %.1f / on %.1f Minstr/s\n",
              instr / best_off / 1e6, instr / best_on / 1e6);

  // Two estimators of the same cost: the median paired round, and the
  // best-of ratio across all rounds.  Timing noise is strictly additive,
  // so whichever reads lower is the tighter upper bound on the true
  // overhead — a real regression inflates both.
  const double median_pct = median(overhead_samples);
  const double best_pct = 100.0 * (best_on / best_off - 1.0);
  const double overhead_pct = std::min(median_pct, best_pct);
  const double noise_pct = median(noise_samples);
  const double effective_gate = std::max(gate, noise_pct);
  std::printf("median off-vs-off noise floor: %.2f%%\n", noise_pct);
  std::printf("metrics-on overhead: median %.2f%% / best-of %.2f%% -> "
              "%.2f%% (gate %.1f%%, effective %.2f%%)\n",
              median_pct, best_pct, overhead_pct, gate, effective_gate);

  // Telemetry must not change what was simulated.
  const bool identical = off_result.times == on_result.times &&
                         off_result.samples == on_result.samples;
  std::printf("times digest off/on: %s / %s -> %s\n",
              trace::times_digest_hex(off_result.times).c_str(),
              trace::times_digest_hex(on_result.times).c_str(),
              identical ? "bit-identical" : "DIVERGENCE");

  // The registry must actually have been collected in the "on" leg.
  const bool collected =
      on_result.metrics.counters.count("mem.instructions") != 0 &&
      off_result.metrics.empty();
  std::printf("registry collected on / empty off: %s\n",
              collected ? "yes" : "NO");
  std::printf("metrics digest: %s\n",
              obs::metrics_digest_hex(on_result.metrics).c_str());

  const bool within_gate = overhead_pct <= effective_gate;
  std::printf("\nshape check: metrics-on overhead within %.2f%%: %s "
              "(%.2f%%)\n",
              effective_gate, within_gate ? "yes" : "NO", overhead_pct);
  return (identical && collected && within_gate) ? 0 : 1;
}
