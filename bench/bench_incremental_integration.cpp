// A6 — Incremental software integration (Section II).
//
// "caches makes that the relative cache offset of software unit's can
// change across integrations.  This might invalidate the WCET estimates
// derived for already integrated software, incurring the cost of
// re-assessing the WCET estimate of already-integrated software ...  DSR
// breaks the relation between the memory position of code/data and the
// cache sets they are assigned to ... hence factoring in the potential
// impact of different cache alignments caused by future integration."
//
// Integration A is the original link map (which happens to carry the
// bad-and-rare L2 congruence); integration B re-links the unchanged
// software after a new module moved every memory object (modelled by the
// alternative link map + a different function order).  On the COTS
// platform the measured WCET of the *unchanged* code shifts — the old
// estimate is invalid.  Under DSR the pWCET estimate holds: every layout
// either integration could produce was already in the sampled space.
#include "bench_util.hpp"

#include <cmath>

using namespace proxima;
using namespace proxima::bench;
using namespace proxima::casestudy;

namespace {

const std::vector<std::string> kIntegrationBOrder = {
    "scan_packets", "validate_t0", "validate_t1", "validate_t2",
    "validate_t3", "recover_packets", "control_main", "control_step",
    "process_telemetry", "chunk_sum_a", "chunk_sum_b", "chunk_sum_c",
    "verify_matrix", "elaborate_commands"};

double cots_time(Layout layout, const std::vector<std::string>& order) {
  CampaignConfig config = analysis_config(Randomisation::kNone, 10);
  config.layout = layout;
  config.function_order = order;
  return mbpta::summarise(run_campaign(config).times).max;
}

double dsr_pwcet(Layout layout, const std::vector<std::string>& order,
                 std::uint32_t runs) {
  CampaignConfig config = analysis_config(Randomisation::kDsr, runs);
  config.layout = layout;
  config.function_order = order;
  // Deliberately a FIXED campaign, not `run_campaign_adaptive`: this
  // experiment extrapolates to 1e-15 while the randomisation space hides
  // a ~1e-3 bad-and-rare layout, and the convergence criterion measures
  // stability of the estimate — not coverage of rare mass.  An adaptive
  // stop at (say) 1750 runs can miss the rare layout that a fixed 2000-run
  // campaign catches, shifting the A-side estimate by ~5%.  Rare-event
  // coverage must be provisioned, MBPTA convergence cannot discover it
  // (see bench_adaptive_campaign for where adaptive sizing IS sound).
  const CampaignResult result = run_campaign(config);
  return mbpta::analyse(result.times, analysis_mbpta(runs)).pwcet(1e-15);
}

} // namespace

int main() {
  // Both integrations' randomisation spaces contain a bad-and-rare layout
  // (~1 in 10^3 runs: the randomised recovery scratch lands L2-congruent
  // with persistent data).  The campaigns must be long enough to sample it
  // on both sides, otherwise the 1e-15 tail extrapolation is decided by
  // whether the rare event happened to fall inside the measurement window
  // — exactly the convergence requirement MBPTA places on campaign sizing.
  const std::uint32_t runs = campaign_runs(2000);
  print_header("Ablation A6 — incremental integration (" +
               std::to_string(runs) + " DSR runs per integration)");

  const double cots_a = cots_time(Layout::kCotsBad, {});
  const double cots_b = cots_time(Layout::kNeutral, kIntegrationBOrder);
  const double dsr_a = dsr_pwcet(Layout::kCotsBad, {}, runs);
  const double dsr_b = dsr_pwcet(Layout::kNeutral, kIntegrationBOrder, runs);

  std::printf("%-34s %14s %14s %10s\n", "", "integration A", "integration B",
              "shift");
  std::printf("%-34s %14.0f %14.0f %9.2f%%\n",
              "COTS measured WCET (stress run)", cots_a, cots_b,
              100.0 * std::fabs(cots_b / cots_a - 1.0));
  std::printf("%-34s %14.0f %14.0f %9.2f%%\n", "DSR pWCET @ 1e-15", dsr_a,
              dsr_b, 100.0 * std::fabs(dsr_b / dsr_a - 1.0));

  const double cots_shift = std::fabs(cots_b / cots_a - 1.0);
  const double dsr_shift = std::fabs(dsr_b / dsr_a - 1.0);
  std::printf("\n(the re-link moved every memory object of the *unchanged*\n"
              " software; the COTS measurement moved with it, while the DSR\n"
              " estimate already covered both alignments)\n");
  const bool shape = dsr_shift < cots_shift;
  std::printf("shape check: DSR estimate more stable than the COTS "
              "measurement across integrations: %s (%.2f%% vs %.2f%%)\n",
              shape ? "yes" : "NO", 100 * dsr_shift, 100 * cots_shift);
  return shape ? 0 : 1;
}
