// A4 — Qualified random sources: MWC vs LFSR (Section III.B.3, ref [3]).
//
// "The quality of this PRNG in terms of period is shown in [3] to be
// sufficient, as for the LFSR proposed in the same work.  However, while
// LFSR can be efficiently implemented in hardware, the MWC is the simplest
// one to implement in software."  The choice must not change the MBPTA
// outcome: both sources must pass i.i.d. and deliver statistically
// compatible pWCET estimates.
#include "bench_util.hpp"

#include <cmath>

using namespace proxima;
using namespace proxima::bench;
using namespace proxima::casestudy;

namespace {

struct PrngOutcome {
  mbpta::Summary summary;
  bool iid = false;
  double pwcet = 0.0;
};

PrngOutcome run_with_prng(PrngKind prng, std::uint32_t runs) {
  CampaignConfig config = analysis_config(Randomisation::kDsr, runs);
  config.prng = prng;
  const CampaignResult result = run_control_campaign(config);
  const mbpta::MbptaAnalysis analysis =
      mbpta::analyse(result.times, analysis_mbpta(runs));
  return PrngOutcome{analysis.summary, analysis.applicable(),
                     analysis.pwcet(1e-15)};
}

} // namespace

int main() {
  const std::uint32_t runs = campaign_runs(600);
  print_header("Ablation A4 — MWC vs LFSR random source (" +
               std::to_string(runs) + " runs each)");

  const PrngOutcome mwc = run_with_prng(PrngKind::kMwc, runs);
  const PrngOutcome lfsr = run_with_prng(PrngKind::kLfsr, runs);

  print_summary_table_header();
  print_summary_row("MWC (paper's choice)", mwc.summary);
  print_summary_row("LFSR", lfsr.summary);

  std::printf("\ni.i.d.: MWC %s, LFSR %s\n", mwc.iid ? "pass" : "FAIL",
              lfsr.iid ? "pass" : "FAIL");
  std::printf("pWCET(1e-15): MWC %.0f vs LFSR %.0f (%.2f%% apart)\n",
              mwc.pwcet, lfsr.pwcet,
              100.0 * std::fabs(mwc.pwcet / lfsr.pwcet - 1.0));

  const bool shape = mwc.iid && lfsr.iid &&
                     std::fabs(mwc.pwcet / lfsr.pwcet - 1.0) < 0.10;
  std::printf("shape check: both qualified sources give compatible MBPTA "
              "outcomes: %s\n",
              shape ? "yes" : "NO");
  return shape ? 0 : 1;
}
