// Shared plumbing for the reproduction benches: campaign sizing via the
// PROXIMA_RUNS environment variable, worker-count selection via
// PROXIMA_WORKERS, aligned table printing, and the standard campaign
// configurations — all drawn from the scenario registry so every bench
// enumerates the same catalogue (operation-like for Figure 2 / Table I,
// analysis-like for Figure 3 / the margin comparison).
#pragma once

#include "casestudy/campaign.hpp"
#include "exec/engine.hpp"
#include "exec/registry.hpp"
#include "mbpta/mbpta.hpp"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace proxima::bench {

/// Campaign size: PROXIMA_RUNS env var, or the given default.
inline std::uint32_t campaign_runs(std::uint32_t fallback) {
  if (const char* env = std::getenv("PROXIMA_RUNS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 10) {
      return static_cast<std::uint32_t>(value);
    }
  }
  return fallback;
}

/// Engine worker count: PROXIMA_WORKERS env var, or the hardware
/// concurrency (engine default).
inline unsigned campaign_workers() {
  if (const char* env = std::getenv("PROXIMA_WORKERS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) {
      return static_cast<unsigned>(value);
    }
  }
  return 0; // engine resolves to hardware concurrency
}

/// Execute a campaign through the parallel engine.  Bit-identical to
/// `run_control_campaign` at any worker count.
inline casestudy::CampaignResult
run_campaign(const casestudy::CampaignConfig& config) {
  exec::EngineOptions options;
  options.workers = campaign_workers();
  return exec::CampaignEngine(options).run(config);
}

/// Execute a registry scenario through the parallel engine.
inline casestudy::CampaignResult run_scenario(std::string_view name,
                                              std::uint32_t runs) {
  return run_campaign(
      exec::ScenarioRegistry::global().at(name).make_config(runs));
}

/// Execute a campaign adaptively (convergence-driven growth) through the
/// parallel engine.  Deterministic at any PROXIMA_WORKERS setting.
inline exec::AdaptiveCampaignResult
run_campaign_adaptive(const casestudy::CampaignConfig& config,
                      const exec::ConvergenceOptions& convergence) {
  exec::EngineOptions options;
  options.workers = campaign_workers();
  return exec::CampaignEngine(options).run_adaptive(config, convergence);
}

/// Guest instructions retired across all *measured* activations of a
/// campaign (the per-run counters are reset after the warm-up activation).
inline std::uint64_t
guest_instructions(const casestudy::CampaignResult& result) {
  std::uint64_t total = 0;
  for (const casestudy::RunSample& sample : result.samples) {
    total += sample.counters.instructions;
  }
  return total;
}

/// A campaign result with its wall time and guest-instruction throughput,
/// so dispatch-speed changes are visible in every bench, not just
/// bench_vm_dispatch.
struct TimedCampaign {
  casestudy::CampaignResult result;
  double seconds = 0.0;

  std::uint64_t instructions() const { return guest_instructions(result); }
  double mips() const {
    return seconds <= 0.0 ? 0.0
                          : static_cast<double>(instructions()) / seconds / 1e6;
  }
};

inline TimedCampaign run_campaign_timed(const casestudy::CampaignConfig& config) {
  TimedCampaign timed;
  const auto start = std::chrono::steady_clock::now();
  timed.result = run_campaign(config);
  timed.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return timed;
}

inline TimedCampaign run_scenario_timed(std::string_view name,
                                        std::uint32_t runs) {
  return run_campaign_timed(
      exec::ScenarioRegistry::global().at(name).make_config(runs));
}

/// One line of wall time + instructions/second for a campaign result
/// timed externally (no copy of the result involved).
inline void print_throughput(const char* label,
                             const casestudy::CampaignResult& result,
                             double seconds) {
  const std::uint64_t instructions = guest_instructions(result);
  const double mips =
      seconds <= 0.0 ? 0.0 : static_cast<double>(instructions) / seconds / 1e6;
  std::printf("%-22s %8.3f s wall   %8.1f Minstr/s   (%llu guest instr)\n",
              label, seconds, mips,
              static_cast<unsigned long long>(instructions));
}

inline void print_throughput(const char* label, const TimedCampaign& timed) {
  print_throughput(label, timed.result, timed.seconds);
}

/// Registry key for a randomisation technology.
inline const char* randomisation_key(casestudy::Randomisation randomisation) {
  switch (randomisation) {
  case casestudy::Randomisation::kNone: return "cots";
  case casestudy::Randomisation::kDsr: return "dsr";
  case casestudy::Randomisation::kDsrOnDemand: return "dsr-ondemand";
  case casestudy::Randomisation::kStatic: return "static";
  case casestudy::Randomisation::kHardware: return "hwrand";
  }
  return "cots";
}

/// Operation-like campaign: random inputs every activation (Figure 2,
/// Table I conditions).  Drawn from the scenario registry.
inline casestudy::CampaignConfig operation_config(
    casestudy::Randomisation randomisation, std::uint32_t runs) {
  return exec::ScenarioRegistry::global()
      .at(std::string("control/operation-") + randomisation_key(randomisation))
      .make_config(runs);
}

/// Analysis-like campaign: pinned stress input (recovery path on), so the
/// measured variability is the platform's (MBPTA methodology, Figure 3).
/// Drawn from the scenario registry.
inline casestudy::CampaignConfig analysis_config(
    casestudy::Randomisation randomisation, std::uint32_t runs) {
  return exec::ScenarioRegistry::global()
      .at(std::string("control/analysis-") + randomisation_key(randomisation))
      .make_config(runs);
}

/// EVT configuration scaled to the campaign size: ~40 block maxima.
inline mbpta::MbptaConfig analysis_mbpta(std::uint32_t runs) {
  mbpta::MbptaConfig config;
  config.block_size = mbpta::auto_block_size(runs);
  return config;
}

inline void print_header(const std::string& title) {
  std::printf("\n============================================================\n"
              "%s\n"
              "============================================================\n",
              title.c_str());
}

inline void print_summary_row(const char* label,
                              const mbpta::Summary& summary) {
  std::printf("%-22s %10.0f %12.1f %10.0f %10.1f\n", label, summary.min,
              summary.mean, summary.max, summary.stddev);
}

inline void print_summary_table_header() {
  std::printf("%-22s %10s %12s %10s %10s\n", "configuration", "min",
              "average", "MOET", "stddev");
}

/// Min-max of a per-run counter over a campaign.
template <typename Get>
std::pair<std::uint64_t, std::uint64_t>
counter_range(const casestudy::CampaignResult& result, Get get) {
  std::uint64_t lo = ~std::uint64_t{0};
  std::uint64_t hi = 0;
  for (const casestudy::RunSample& sample : result.samples) {
    const std::uint64_t value = get(sample);
    lo = std::min(lo, value);
    hi = std::max(hi, value);
  }
  return {lo, hi};
}

inline std::string range_text(std::pair<std::uint64_t, std::uint64_t> range) {
  if (range.first == range.second) {
    return std::to_string(range.first);
  }
  return std::to_string(range.first) + "-" + std::to_string(range.second);
}

} // namespace proxima::bench
