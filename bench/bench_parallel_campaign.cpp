// E7 — Parallel campaign engine throughput.
//
// Measures campaign throughput (measured runs per second) for the
// sequential driver and for `exec::CampaignEngine` at 1/2/4/8 workers on
// the control-task scenario, prints the speedup, and cross-checks that the
// engine's output stays bit-identical to the sequential baseline (the
// engine's defining property — see campaign_runner.hpp).
//
//   $ PROXIMA_RUNS=400 ./bench_parallel_campaign
#include "bench_util.hpp"
#include "exec/engine.hpp"
#include "exec/registry.hpp"

#include <chrono>
#include <thread>

using namespace proxima;
using namespace proxima::bench;
using namespace proxima::casestudy;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

} // namespace

int main() {
  const std::uint32_t runs = campaign_runs(160);
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  print_header("Parallel campaign engine throughput (" +
               std::to_string(runs) + " runs, " + std::to_string(cores) +
               " hardware threads)");

  const exec::Scenario& scenario =
      exec::ScenarioRegistry::global().at("control/operation-dsr");
  const CampaignConfig config = scenario.make_config(runs);

  // Sequential baseline (also the correctness reference).
  const auto sequential_start = std::chrono::steady_clock::now();
  const CampaignResult baseline = run_control_campaign(config);
  const double sequential_seconds = seconds_since(sequential_start);
  const double sequential_rate = runs / sequential_seconds;
  std::printf("%-22s %10.2f s %12.1f runs/s %10s\n", "sequential",
              sequential_seconds, sequential_rate, "1.00x");
  print_throughput("sequential", baseline, sequential_seconds);

  bool identical = true;
  double best_speedup = 0.0;
  std::printf("\ncsv,workers,seconds,runs_per_sec,speedup,identical\n");
  std::printf("csv,0,%.3f,%.1f,1.00,yes\n", sequential_seconds,
              sequential_rate);
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    exec::EngineOptions options;
    options.workers = workers;
    const exec::CampaignEngine engine(options);

    const auto start = std::chrono::steady_clock::now();
    const CampaignResult result = engine.run(config);
    const double seconds = seconds_since(start);
    const double rate = runs / seconds;
    const double speedup = sequential_seconds / seconds;
    best_speedup = std::max(best_speedup, speedup);

    const bool same = result.times == baseline.times &&
                      result.samples == baseline.samples &&
                      result.verified_runs == baseline.verified_runs;
    identical = identical && same;

    std::printf("%-19s %2u %10.2f s %12.1f runs/s %9.2fx   identical: %s\n",
                "engine, workers =", workers, seconds, rate, speedup,
                same ? "yes" : "NO");
    std::printf("csv,%u,%.3f,%.1f,%.2f,%s\n", workers, seconds, rate, speedup,
                same ? "yes" : "no");
  }

  std::printf("\nbit-identical to the sequential campaign at every worker "
              "count: %s\n",
              identical ? "yes" : "NO");
  if (cores >= 4) {
    const bool fast_enough = best_speedup > 1.5;
    std::printf("shape check: >1.5x throughput with 4+ workers: %s "
                "(best %.2fx)\n",
                fast_enough ? "yes" : "NO", best_speedup);
    return identical && fast_enough ? 0 : 1;
  }
  std::printf("shape check: speedup not assessed (%u hardware thread%s); "
              "correctness only\n",
              cores, cores == 1 ? "" : "s");
  return identical ? 0 : 1;
}
