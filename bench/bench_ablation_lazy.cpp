// A2 — Eager vs lazy relocation (Section III.B.1).
//
// "Eager implementation requires all function relocations to take place
// before the program execution, while lazy one relocates only the
// functions used by the software, at the moment of their first use.
// However, lazy relocation complicates the estimation of the worst-case
// memory consumption as well as the WCET ... we selected to implement an
// eager relocation scheme."
//
// The bench quantifies the WCET half of that argument: under the lazy
// scheme every partition reboot re-arms the first-call traps, so the
// measured UoA pays the relocation cost (copy loop + invalidation) inside
// its own execution time.
#include "bench_util.hpp"

using namespace proxima;
using namespace proxima::bench;
using namespace proxima::casestudy;

int main() {
  const std::uint32_t runs = campaign_runs(200);
  print_header("Ablation A2 — eager vs lazy relocation (" +
               std::to_string(runs) + " runs each)");

  CampaignConfig eager = analysis_config(Randomisation::kDsr, runs);
  const CampaignResult eager_result = run_control_campaign(eager);

  CampaignConfig lazy = analysis_config(Randomisation::kDsr, runs);
  lazy.pass_options.lazy_stubs = true;
  lazy.dsr_options.eager = false;
  const CampaignResult lazy_result = run_control_campaign(lazy);

  const mbpta::Summary eager_summary = mbpta::summarise(eager_result.times);
  const mbpta::Summary lazy_summary = mbpta::summarise(lazy_result.times);

  print_summary_table_header();
  print_summary_row("eager (paper's choice)", eager_summary);
  print_summary_row("lazy (first-call trap)", lazy_summary);

  std::printf("\nlazy UoA inflation: avg %+.2f%%, MOET %+.2f%%\n",
              100.0 * (lazy_summary.mean / eager_summary.mean - 1.0),
              100.0 * (lazy_summary.max / eager_summary.max - 1.0));
  std::printf("(the relocation copy + invalidation of every function used\n"
              " by the UoA lands inside the measured execution time)\n");

  const bool shape = lazy_summary.mean > eager_summary.mean &&
                     lazy_summary.max > eager_summary.max;
  std::printf("shape check: lazy inflates both avg and MOET: %s\n",
              shape ? "yes" : "NO");
  return shape ? 0 : 1;
}
