// Adaptive (convergence-driven) campaign sizing vs the fixed-count habit.
//
// The paper's protocol collects runs until the MBPTA convergence criterion
// holds; a fixed-size campaign must be provisioned for the worst case and
// therefore over-samples whenever the estimate stabilises early.  This
// bench runs the analysis-like DSR scenario (pinned stress input, the
// Figure-3 conditions) both ways and reports the run savings, then
// re-runs the adaptive campaign at a different worker count and checks
// the engine's determinism contract: same stop count, bit-identical
// times (same digest).
//
//   PROXIMA_RUNS     campaign budget (default 2000)
//   PROXIMA_WORKERS  worker count of the "parallel" leg (default: hardware)
#include "bench_util.hpp"

#include "trace/report.hpp"

#include <cinttypes>

using namespace proxima;
using namespace proxima::bench;
using namespace proxima::casestudy;

namespace {

exec::ConvergenceOptions convergence_for(std::uint32_t budget) {
  exec::ConvergenceOptions convergence;
  convergence.batch_runs = std::max<std::uint64_t>(50, budget / 20);
  convergence.max_runs = budget;
  convergence.controller.target_exceedance = 1e-12;
  convergence.controller.epsilon = 0.01;
  convergence.controller.stable_rounds = 3;
  convergence.controller.min_samples = std::min<std::size_t>(400, budget);
  convergence.controller.mbpta = analysis_mbpta(budget);
  return convergence;
}

} // namespace

int main() {
  const std::uint32_t budget = campaign_runs(2000);
  print_header("Adaptive campaign sizing (budget " + std::to_string(budget) +
               " runs, target 1e-12)");
  const CampaignConfig config =
      analysis_config(Randomisation::kDsr, budget);

  // Fixed-count habit: run the whole budget.
  const TimedCampaign fixed = run_campaign_timed(config);
  print_throughput("fixed (full budget)", fixed);

  // Convergence-driven: stop at the first stable batch boundary.
  const auto start = std::chrono::steady_clock::now();
  const exec::AdaptiveCampaignResult adaptive =
      run_campaign_adaptive(config, convergence_for(budget));
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  print_throughput("adaptive", adaptive.campaign, seconds);
  std::printf("  stopped at %" PRIu64 " of %u budgeted runs (%s, %zu "
              "batches): %.1f%% of the budget\n",
              adaptive.runs(), budget,
              adaptive.converged ? "converged" : "budget exhausted",
              adaptive.batches,
              100.0 * static_cast<double>(adaptive.runs()) / budget);

  // The adaptive prefix is the fixed campaign's prefix, bit for bit.
  const std::span<const double> prefix(
      fixed.result.times.data(), static_cast<std::size_t>(adaptive.runs()));
  const bool prefix_identical =
      trace::times_digest(prefix) ==
      trace::times_digest(adaptive.campaign.times);

  // Determinism contract: a different worker count stops at the same
  // boundary with bit-identical times.
  exec::EngineOptions one_worker;
  one_worker.workers = 1;
  const exec::AdaptiveCampaignResult sequential =
      exec::CampaignEngine(one_worker).run_adaptive(config,
                                                    convergence_for(budget));
  const bool deterministic =
      sequential.runs() == adaptive.runs() &&
      trace::times_digest(sequential.campaign.times) ==
          trace::times_digest(adaptive.campaign.times);
  std::printf("  digest %s (workers=1 %s at the same stop count)\n",
              trace::times_digest_hex(adaptive.campaign.times).c_str(),
              deterministic ? "bit-identical" : "DIVERGED");
  std::printf("shape check: adaptive prefix of fixed campaign: %s; "
              "deterministic across worker counts: %s\n",
              prefix_identical ? "yes" : "NO",
              deterministic ? "yes" : "NO");
  return prefix_identical && deterministic ? 0 : 1;
}
