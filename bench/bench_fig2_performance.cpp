// E1 — Figure 2: "Average Performance Comparison between original and
// software randomised version of the space application".
//
// Reproduces the paper's min / average / max (MOET) execution-time bars for
// the critical (control) task with and without DSR, under operation-like
// conditions (fresh random inputs every activation, partition reboot with
// re-randomisation between DSR runs).
//
// Expected shape (paper Section VI): "the results with DSR are quite
// similar to the ones obtained without DSR.  In fact, the maximum observed
// time is a little bit smaller" — the COTS binary's bad-and-rare L2 layout
// produces the long MOET that DSR's randomisation (almost) never exhibits.
#include "bench_util.hpp"

using namespace proxima;
using namespace proxima::bench;
using namespace proxima::casestudy;

int main() {
  const std::uint32_t runs = campaign_runs(400);
  print_header("Figure 2 — control task execution times (" +
               std::to_string(runs) + " runs each)");

  // Registry scenarios executed on the parallel campaign engine
  // (bit-identical to the sequential protocol at any worker count).
  const TimedCampaign cots_timed = run_scenario_timed("control/operation-cots", runs);
  const TimedCampaign dsr_timed = run_scenario_timed("control/operation-dsr", runs);
  const CampaignResult& cots = cots_timed.result;
  const CampaignResult& dsr = dsr_timed.result;

  const mbpta::Summary cots_summary = mbpta::summarise(cots.times);
  const mbpta::Summary dsr_summary = mbpta::summarise(dsr.times);

  print_summary_table_header();
  print_summary_row("No Rand (COTS)", cots_summary);
  print_summary_row("Sw Rand (DSR)", dsr_summary);
  std::printf("\n");
  print_throughput("No Rand (COTS)", cots_timed);
  print_throughput("Sw Rand (DSR)", dsr_timed);

  std::printf("\naverage delta: %+.2f%%   (paper: DSR does not impact "
              "average performance)\n",
              100.0 * (dsr_summary.mean / cots_summary.mean - 1.0));
  std::printf("MOET delta:    %+.2f%%   (paper: DSR MOET 'a little bit "
              "smaller')\n",
              100.0 * (dsr_summary.max / cots_summary.max - 1.0));

  std::printf("\ncsv,config,min,avg,max,sd\n");
  std::printf("csv,no_rand,%.0f,%.1f,%.0f,%.1f\n", cots_summary.min,
              cots_summary.mean, cots_summary.max, cots_summary.stddev);
  std::printf("csv,sw_rand,%.0f,%.1f,%.0f,%.1f\n", dsr_summary.min,
              dsr_summary.mean, dsr_summary.max, dsr_summary.stddev);

  const bool moet_ok = dsr_summary.max <= cots_summary.max;
  const bool avg_ok =
      dsr_summary.mean < cots_summary.mean * 1.03; // "no average impact"
  std::printf("\nshape check: MOET(DSR) <= MOET(COTS): %s, avg within 3%%: %s\n",
              moet_ok ? "yes" : "NO", avg_ok ? "yes" : "NO");
  return moet_ok && avg_ok ? 0 : 1;
}
