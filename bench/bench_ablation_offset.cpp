// A1 — Random-offset range: L1 way size vs L2 way size (Section III.B.4).
//
// "All software randomisation works so far, have considered a single cache
// level ... the random offset of the memory object need to be up to the
// size of the cache way, so previous works set this number according to
// the L1 size.  However, our target platform features also a second level
// unified cache.  For this reason, we set the offset equal to the L2 cache
// way size, in order to randomise also the cache layout of the second
// level cache."
//
// Measured directly: across partition reboots, which fraction of the
// direct-mapped L2's 1024 sets can the UoA function's first line occupy?
// With a 4 KiB (L1-way) range the code explores at most 128 sets — 1/8 of
// the L2 layout space; the 32 KiB range explores all of it.  (Because the
// L1 way size divides the L2 way size, the 32 KiB range also fully
// randomises the L1 layouts.)
#include "bench_util.hpp"

#include "core/dsr_runtime.hpp"
#include "isa/linker.hpp"
#include "mem/guest_memory.hpp"
#include "mem/hierarchy.hpp"
#include "rng/mwc.hpp"
#include "trace/trace.hpp"

#include <set>

using namespace proxima;
using namespace proxima::bench;
using namespace proxima::casestudy;

namespace {

struct Coverage {
  std::size_t l2_sets = 0;  // of 1024
  std::size_t il1_sets = 0; // of 128
};

Coverage coverage_for(std::uint32_t offset_range, int reboots) {
  ControlParams params;
  isa::Program program = build_control_program(params);
  trace::instrument_function(program, "control_step");
  dsr::apply_pass(program);
  const isa::LinkedImage image =
      isa::link(program, control_layout(params, Layout::kCotsBad, 0x40800000));

  mem::GuestMemory memory;
  mem::MemoryHierarchy hierarchy(mem::leon3_hierarchy_config());
  rng::Mwc random(611085);
  dsr::RuntimeOptions options;
  options.offset_range = offset_range;
  dsr::DsrRuntime runtime(memory, hierarchy, image, random, options);
  image.load_into(memory);
  runtime.initialise();

  const std::uint32_t uoa_id = image.function("control_step").id;
  Coverage coverage;
  std::set<std::uint32_t> l2_sets;
  std::set<std::uint32_t> il1_sets;
  for (int r = 0; r < reboots; ++r) {
    runtime.rerandomise();
    const std::uint32_t addr = runtime.function_address(uoa_id);
    l2_sets.insert((addr / 32) % 1024);
    il1_sets.insert((addr / 32) % 128);
  }
  coverage.l2_sets = l2_sets.size();
  coverage.il1_sets = il1_sets.size();
  return coverage;
}

} // namespace

int main() {
  const int reboots = static_cast<int>(campaign_runs(4000));
  print_header("Ablation A1 — DSR offset range vs cache-layout coverage (" +
               std::to_string(reboots) + " reboots)");

  const Coverage l1_range = coverage_for(4 * 1024, reboots);
  const Coverage l2_range = coverage_for(32 * 1024, reboots);

  std::printf("%-26s %18s %18s\n", "offset range", "L2 sets reached",
              "IL1 sets reached");
  std::printf("%-26s %10zu / 1024 %12zu / 128\n", "L1 way size (4 KiB)",
              l1_range.l2_sets, l1_range.il1_sets);
  std::printf("%-26s %10zu / 1024 %12zu / 128\n", "L2 way size (32 KiB)",
              l2_range.l2_sets, l2_range.il1_sets);

  std::printf("\n(the 4 KiB range pins the UoA code to a 1/8 slice of the\n"
              " direct-mapped L2: inter-object L2 conflicts outside that\n"
              " slice can never be explored by the analysis runs)\n");

  const bool shape = l1_range.l2_sets <= 128 && l2_range.l2_sets > 700 &&
                     l1_range.il1_sets >= 100 && l2_range.il1_sets >= 100;
  std::printf("shape check: 4K range caps L2 coverage at 128 sets, 32K "
              "range reaches (nearly) all while both cover the IL1: %s\n",
              shape ? "yes" : "NO");
  return shape ? 0 : 1;
}
