// E3 — "Fulfilling the i.i.d properties" (Section VI).
//
// The paper: "We test independence with the Ljung-Box test and a 5%
// significance level ... For identical distribution we use the two-sample
// Kolmogorov-Smirnov test also with a 5% significance level ...  For our
// experiments we obtain values above 0.05, meaning that both tests are
// passed, hence enabling the application of EVT."
//
// Reproduced for the DSR analysis campaign (pinned stress input, the
// paper's measurement protocol) and contrasted with the degenerate COTS
// behaviour under the same protocol (no randomisation source: the i.i.d.
// machinery has nothing to model — all runs are identical).
#include "bench_util.hpp"

using namespace proxima;
using namespace proxima::bench;
using namespace proxima::casestudy;

int main() {
  const std::uint32_t runs = campaign_runs(600);
  print_header("i.i.d. tests on the measurement campaigns (" +
               std::to_string(runs) + " runs)");

  const CampaignResult dsr =
      run_control_campaign(analysis_config(Randomisation::kDsr, runs));
  const mbpta::IidVerdict dsr_verdict = mbpta::check_iid(dsr.times);
  std::printf("DSR analysis campaign:\n");
  std::printf("  Ljung-Box (independence):        p = %.4f  -> %s\n",
              dsr_verdict.independence.p_value,
              dsr_verdict.independence.passes() ? "pass" : "FAIL");
  std::printf("  2-sample KS (identical distrib): p = %.4f  -> %s\n",
              dsr_verdict.identical_distribution.p_value,
              dsr_verdict.identical_distribution.passes() ? "pass" : "FAIL");
  std::printf("  i.i.d. verdict: %s  (paper: both above 0.05)\n",
              dsr_verdict.passes() ? "PASS" : "FAIL");

  const CampaignResult cots =
      run_control_campaign(analysis_config(Randomisation::kNone, runs));
  const mbpta::Summary cots_summary = mbpta::summarise(cots.times);
  std::printf("\nCOTS under the same protocol: min = max = %.0f (stddev %.1f)\n",
              cots_summary.min, cots_summary.stddev);
  std::printf("  -> no randomisation source: execution time is a constant,\n"
              "     there is no distribution for EVT to model; representativity\n"
              "     rests entirely on the engineer's choice of scenarios.\n");

  // The CV diagnostic on the DSR tail (later MBPTA practice).
  const mbpta::CvTestResult cv = mbpta::cv_exponentiality(dsr.times, 0.9);
  std::printf("\nCV exponentiality diagnostic on the DSR tail: cv = %.3f "
              "(band %.3f..%.3f) -> %s\n",
              cv.cv, cv.lower, cv.upper,
              cv.passes() ? "exponential-compatible" : "heavier/lighter tail");

  return dsr_verdict.passes() ? 0 : 1;
}
