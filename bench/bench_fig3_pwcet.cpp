// E4 — Figure 3: "pWCET curve of the DSR version of the application".
//
// The paper shows the RVS-Viewer screenshot: execution time on the X axis,
// exceedance probability (log scale) on the Y axis; the pWCET prediction (a
// straight line in that scale) "tightly upper-bounds the measured execution
// times values (MET)".  This bench regenerates the same picture as an
// ASCII plot plus the underlying CSV series.
#include "bench_util.hpp"
#include "trace/report.hpp"

using namespace proxima;
using namespace proxima::bench;
using namespace proxima::casestudy;

int main() {
  const std::uint32_t runs = campaign_runs(1000);
  print_header("Figure 3 — pWCET curve of the DSR version (" +
               std::to_string(runs) + " measurement runs)");

  const CampaignResult dsr =
      run_control_campaign(analysis_config(Randomisation::kDsr, runs));
  const mbpta::MbptaAnalysis analysis =
      mbpta::analyse(dsr.times, analysis_mbpta(runs));

  std::printf("i.i.d.: LB p=%.3f, KS p=%.3f -> %s (EVT %s)\n",
              analysis.iid.independence.p_value,
              analysis.iid.identical_distribution.p_value,
              analysis.iid.passes() ? "pass" : "FAIL",
              analysis.applicable() ? "applicable" : "NOT applicable");
  std::printf("measurements: min=%.0f avg=%.1f MOET=%.0f\n",
              analysis.summary.min, analysis.summary.mean,
              analysis.summary.max);
  std::printf("Gumbel tail fit: location=%.1f scale=%.2f (block size %u)\n\n",
              analysis.model.info().gumbel.location,
              analysis.model.info().gumbel.scale,
              analysis.model.info().block_size);

  std::printf("%s\n",
              trace::ascii_exceedance_plot(analysis.model, dsr.times).c_str());

  std::printf("%s", trace::pwcet_curve_csv(analysis.model).c_str());

  // The curve must upper-bound every measurement at its empirical rate.
  const double pwcet_1e15 = analysis.pwcet(1e-15);
  const bool bounds = pwcet_1e15 > analysis.summary.max;
  std::printf("\npWCET(1e-15) = %.0f cycles, %.2f%% above the DSR MOET "
              "(paper: +0.2%%)\n",
              pwcet_1e15, 100.0 * (pwcet_1e15 / analysis.summary.max - 1.0));
  std::printf("shape check: curve tightly upper-bounds the MET: %s\n",
              bounds ? "yes" : "NO");
  return analysis.applicable() && bounds ? 0 : 1;
}
