// E4 — Figure 3: "pWCET curve of the DSR version of the application".
//
// The paper shows the RVS-Viewer screenshot: execution time on the X axis,
// exceedance probability (log scale) on the Y axis; the pWCET prediction (a
// straight line in that scale) "tightly upper-bounds the measured execution
// times values (MET)".  This bench regenerates the same picture as an
// ASCII plot plus the underlying CSV series.
#include "bench_util.hpp"
#include "trace/report.hpp"

#include <map>
#include <vector>

using namespace proxima;
using namespace proxima::bench;
using namespace proxima::casestudy;

int main() {
  const std::uint32_t runs = campaign_runs(1000);
  print_header("Figure 3 — pWCET curve of the DSR version (" +
               std::to_string(runs) + " measurement runs)");

  // The campaign runs on the parallel engine; completed shards stream into
  // the MBPTA convergence controller while measurement is still going —
  // the incremental measure-test-extend loop of Section V.
  mbpta::ConvergenceController::Config convergence;
  convergence.target_exceedance = 1e-15;
  convergence.mbpta = analysis_mbpta(runs);
  mbpta::ConvergenceController controller(convergence);

  // Shards complete in scheduling order; the controller's stable-round
  // accounting is order-sensitive, so batches are buffered and released in
  // run-index order to keep the convergence verdict reproducible at any
  // worker count.  (Sink calls are serialised by the engine.)
  std::map<std::uint64_t, std::vector<double>> pending_shards;
  std::uint64_t watermark = 0;
  exec::EngineOptions engine_options;
  engine_options.workers = campaign_workers();
  engine_options.shard_sink = [&](const exec::ShardRange& range,
                                  std::span<const double> times) {
    pending_shards.emplace(range.begin,
                           std::vector<double>(times.begin(), times.end()));
    for (auto it = pending_shards.begin();
         it != pending_shards.end() && it->first == watermark;
         it = pending_shards.erase(it)) {
      watermark += it->second.size();
      controller.add_batch(it->second);
    }
  };
  const auto campaign_start = std::chrono::steady_clock::now();
  const CampaignResult dsr =
      exec::CampaignEngine(engine_options)
          .run(exec::ScenarioRegistry::global()
                   .at("control/analysis-dsr")
                   .make_config(runs));
  const double campaign_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    campaign_start)
          .count();
  std::printf("convergence controller: %zu samples streamed, pWCET "
              "estimate %s after the campaign\n",
              controller.samples_used(),
              controller.converged() ? "stable" : "still moving");
  print_throughput("analysis-dsr campaign", dsr, campaign_seconds);

  const mbpta::MbptaAnalysis analysis =
      mbpta::analyse(dsr.times, analysis_mbpta(runs));

  std::printf("i.i.d.: LB p=%.3f, KS p=%.3f -> %s (EVT %s)\n",
              analysis.iid.independence.p_value,
              analysis.iid.identical_distribution.p_value,
              analysis.iid.passes() ? "pass" : "FAIL",
              analysis.applicable() ? "applicable" : "NOT applicable");
  std::printf("measurements: min=%.0f avg=%.1f MOET=%.0f\n",
              analysis.summary.min, analysis.summary.mean,
              analysis.summary.max);
  std::printf("Gumbel tail fit: location=%.1f scale=%.2f (block size %u)\n\n",
              analysis.model.info().gumbel.location,
              analysis.model.info().gumbel.scale,
              analysis.model.info().block_size);

  std::printf("%s\n",
              trace::ascii_exceedance_plot(analysis.model, dsr.times).c_str());

  std::printf("%s", trace::pwcet_curve_csv(analysis.model).c_str());

  // The curve must upper-bound every measurement at its empirical rate.
  const double pwcet_1e15 = analysis.pwcet(1e-15);
  const bool bounds = pwcet_1e15 > analysis.summary.max;
  std::printf("\npWCET(1e-15) = %.0f cycles, %.2f%% above the DSR MOET "
              "(paper: +0.2%%)\n",
              pwcet_1e15, 100.0 * (pwcet_1e15 / analysis.summary.max - 1.0));
  std::printf("shape check: curve tightly upper-bounds the MET: %s\n",
              bounds ? "yes" : "NO");
  return analysis.applicable() && bounds ? 0 : 1;
}
