// A5 — DSR vs the alternatives it substitutes (Sections I, III).
//
// The paper motivates DSR as the COTS-compatible replacement for hardware
// time-randomised caches ("specialised hardware has high recurring costs
// and a long adoption horizon"), and notes that the static software variant
// is "equivalent in enabling MBPTA".  This ablation runs all four
// platforms through the same analysis campaign.
#include "bench_util.hpp"

using namespace proxima;
using namespace proxima::bench;
using namespace proxima::casestudy;

namespace {

struct Outcome {
  mbpta::Summary summary;
  bool iid = false;
  double pwcet = 0.0;
  bool degenerate = false;
};

Outcome run_one(Randomisation randomisation, std::uint32_t runs) {
  const CampaignResult result =
      run_control_campaign(analysis_config(randomisation, runs));
  Outcome out;
  out.summary = mbpta::summarise(result.times);
  if (out.summary.stddev < 1e-9) {
    out.degenerate = true; // constant series: nothing for EVT to model
    return out;
  }
  const mbpta::MbptaAnalysis analysis =
      mbpta::analyse(result.times, analysis_mbpta(runs));
  out.iid = analysis.applicable();
  out.pwcet = analysis.pwcet(1e-15);
  return out;
}

void print_row(const char* label, const Outcome& outcome) {
  if (outcome.degenerate) {
    std::printf("%-22s %10.0f %12s %10s %12s\n", label, outcome.summary.max,
                "constant", "n/a", "n/a");
    return;
  }
  std::printf("%-22s %10.0f %12s %10s %12.0f\n", label, outcome.summary.max,
              outcome.iid ? "pass" : "FAIL", outcome.iid ? "yes" : "no",
              outcome.pwcet);
}

} // namespace

int main() {
  const std::uint32_t runs = campaign_runs(500);
  print_header("Ablation A5 — randomisation technologies compared (" +
               std::to_string(runs) + " runs each)");

  const Outcome none = run_one(Randomisation::kNone, std::max(50u, runs / 10));
  const Outcome dsr = run_one(Randomisation::kDsr, runs);
  const Outcome sw_static = run_one(Randomisation::kStatic, runs);
  const Outcome hardware = run_one(Randomisation::kHardware, runs);

  std::printf("%-22s %10s %12s %10s %12s\n", "platform", "MOET", "i.i.d.",
              "MBPTA?", "pWCET@1e-15");
  print_row("COTS (no random.)", none);
  print_row("DSR (dynamic sw)", dsr);
  print_row("static sw rand.", sw_static);
  print_row("hw randomised caches", hardware);

  std::printf("\n(paper: both software variants are 'equivalent in enabling "
              "MBPTA';\n DSR achieves on COTS what the randomised hardware "
              "achieves by design)\n");

  const bool shape = none.degenerate && dsr.iid && sw_static.iid &&
                     hardware.iid;
  std::printf("shape check: all three randomised platforms enable MBPTA, "
              "plain COTS does not: %s\n",
              shape ? "yes" : "NO");
  return shape ? 0 : 1;
}
