// Dispatch-core comparison: predecoded fast core vs reference interpreter.
//
// Runs the same control-task campaigns sequentially on both execution
// cores and reports guest instructions per wall second for each, plus the
// speedup ratio.  The campaigns must be *bit-identical* across cores —
// any divergence in UoA cycles or counters fails the bench outright —
// so the number this bench prints is a pure dispatch-speed delta, not a
// behaviour change.
//
// Exit status: 0 iff results are identical on every workload AND the fast
// core sustains >= 1.5x the reference core's instructions/second on the
// operation-like control-task workload.
#include "bench_util.hpp"
#include "casestudy/control_task.hpp"

#include <chrono>

using namespace proxima;
using namespace proxima::bench;
using namespace proxima::casestudy;

namespace {

struct CoreRun {
  CampaignResult result;
  double seconds = 0.0;
};

CoreRun run_core(const CampaignConfig& base, vm::VmCore core) {
  CampaignConfig config = base;
  config.vm_core = core;
  CoreRun run;
  const auto start = std::chrono::steady_clock::now();
  // Sequential on purpose: worker scheduling must not pollute the timing.
  run.result = run_control_campaign(config);
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return run;
}

bool identical(const CampaignResult& a, const CampaignResult& b) {
  return a.times == b.times && a.samples == b.samples;
}

} // namespace

int main() {
  const std::uint32_t runs = campaign_runs(300);
  print_header("VM dispatch: predecoded fast core vs reference interpreter (" +
               std::to_string(runs) + " runs each, sequential)");
  std::printf("control program: %zu static instructions (predecode slots)\n\n",
              build_control_program(ControlParams{}).total_instructions());

  bool all_identical = true;
  double control_ratio = 0.0;

  std::printf("%-26s %12s %12s %8s  %s\n", "workload", "ref Minstr/s",
              "fast Minstr/s", "ratio", "bit-identical");
  for (const char* name :
       {"control/operation-cots", "control/analysis-dsr",
        "control/operation-hwrand"}) {
    const CampaignConfig config =
        exec::ScenarioRegistry::global().at(name).make_config(runs);
    const CoreRun reference = run_core(config, vm::VmCore::kReference);
    const CoreRun fast = run_core(config, vm::VmCore::kFast);

    const auto instr =
        static_cast<double>(guest_instructions(reference.result));
    const double ref_mips = instr / reference.seconds / 1e6;
    const double fast_mips =
        static_cast<double>(guest_instructions(fast.result)) / fast.seconds /
        1e6;
    const double ratio = fast_mips / ref_mips;
    const bool same = identical(fast.result, reference.result);
    all_identical = all_identical && same;
    if (std::string_view(name) == "control/operation-cots") {
      control_ratio = ratio;
    }
    std::printf("%-26s %12.1f %12.1f %7.2fx  %s\n", name, ref_mips, fast_mips,
                ratio, same ? "yes" : "NO — DIVERGENCE");
  }

  std::printf("\nshape check: bit-identical on all workloads: %s\n",
              all_identical ? "yes" : "NO");
  std::printf("shape check: fast core >= 1.5x on the control task: %s "
              "(%.2fx)\n",
              control_ratio >= 1.5 ? "yes" : "NO", control_ratio);
  return (all_identical && control_ratio >= 1.5) ? 0 : 1;
}
