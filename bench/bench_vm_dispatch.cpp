// Dispatch-core comparison: the three execution tiers — reference switch
// interpreter, predecoded fast core, and the superblock (fast-sb) tier —
// on the same control-task campaigns, sequentially.
//
// Reports guest instructions per wall second for each tier plus the
// speedup ratios.  The campaigns must be *bit-identical* across all three
// cores — any divergence in UoA cycles or counters fails the bench
// outright — so the numbers this bench prints are pure dispatch-speed
// deltas, not behaviour changes.
//
// Exit status: 0 iff results are identical on every workload AND, on the
// operation-like control-task workload, the fast core sustains >= 1.5x the
// reference core's instructions/second AND the superblock tier is at least
// as fast as the plain fast core (the CI gate that keeps the new default
// tier from regressing).
#include "bench_util.hpp"
#include "casestudy/control_task.hpp"

#include <chrono>

using namespace proxima;
using namespace proxima::bench;
using namespace proxima::casestudy;

namespace {

struct CoreRun {
  CampaignResult result;
  double seconds = 0.0;
};

CoreRun run_core(const CampaignConfig& base, vm::VmCore core) {
  CampaignConfig config = base;
  config.vm_core = core;
  CoreRun run;
  const auto start = std::chrono::steady_clock::now();
  // Sequential on purpose: worker scheduling must not pollute the timing.
  run.result = run_control_campaign(config);
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return run;
}

bool identical(const CampaignResult& a, const CampaignResult& b) {
  return a.times == b.times && a.samples == b.samples;
}

double mips(const CoreRun& run) {
  return static_cast<double>(guest_instructions(run.result)) / run.seconds /
         1e6;
}

} // namespace

int main() {
  const std::uint32_t runs = campaign_runs(300);
  print_header("VM dispatch: reference vs fast vs fast-sb (" +
               std::to_string(runs) + " runs each, sequential)");
  std::printf("control program: %zu static instructions (predecode slots)\n\n",
              build_control_program(ControlParams{}).total_instructions());

  bool all_identical = true;
  double control_fast_ratio = 0.0;
  double control_sb_ratio = 0.0;

  std::printf("%-26s %10s %10s %10s %7s %7s  %s\n", "workload", "ref Mi/s",
              "fast Mi/s", "sb Mi/s", "fast/ref", "sb/fast",
              "bit-identical");
  for (const char* name :
       {"control/operation-cots", "control/analysis-dsr",
        "control/operation-hwrand"}) {
    const CampaignConfig config =
        exec::ScenarioRegistry::global().at(name).make_config(runs);
    const CoreRun reference = run_core(config, vm::VmCore::kReference);
    const CoreRun fast = run_core(config, vm::VmCore::kFast);
    const CoreRun fast_sb = run_core(config, vm::VmCore::kFastSb);

    const double ref_mips = mips(reference);
    const double fast_mips = mips(fast);
    const double sb_mips = mips(fast_sb);
    const double fast_ratio = fast_mips / ref_mips;
    const double sb_ratio = sb_mips / fast_mips;
    const bool same = identical(fast.result, reference.result) &&
                      identical(fast_sb.result, reference.result);
    all_identical = all_identical && same;
    if (std::string_view(name) == "control/operation-cots") {
      control_fast_ratio = fast_ratio;
      control_sb_ratio = sb_ratio;
    }
    std::printf("%-26s %10.1f %10.1f %10.1f %6.2fx %6.2fx  %s\n", name,
                ref_mips, fast_mips, sb_mips, fast_ratio, sb_ratio,
                same ? "yes" : "NO — DIVERGENCE");
  }

  std::printf("\nshape check: bit-identical on all workloads: %s\n",
              all_identical ? "yes" : "NO");
  std::printf("shape check: fast core >= 1.5x reference on the control task: "
              "%s (%.2fx)\n",
              control_fast_ratio >= 1.5 ? "yes" : "NO", control_fast_ratio);
  std::printf("shape check: fast-sb >= fast on the control task: %s "
              "(%.2fx)\n",
              control_sb_ratio >= 1.0 ? "yes" : "NO", control_sb_ratio);
  return (all_identical && control_fast_ratio >= 1.5 &&
          control_sb_ratio >= 1.0)
             ? 0
             : 1;
}
