// Hypervisor campaigns: the control task's pWCET solo vs under partition
// interference (the paper's Section IV setting).
//
// Runs the analysis-like protocol on the cyclic schedule four ways —
// control alone, with the image-processing guest, with the image guest
// under DSR, and with the synthetic L2-evicting stressor — and reports the
// per-partition timing rows plus the solo-vs-interference MOET/pWCET gap.
// Finishes with the determinism gate: the interference campaign re-run at
// workers=1 must produce a bit-identical times digest (the engine's
// sharding contract extended to multi-partition platforms).
//
//   PROXIMA_RUNS     measured runs per scenario (default 300)
//   PROXIMA_WORKERS  engine worker count (default: hardware)
#include "bench_util.hpp"

#include "trace/partition_report.hpp"
#include "trace/report.hpp"

#include <cstdio>
#include <string>
#include <vector>

using namespace proxima;
using namespace proxima::bench;

namespace {

struct HvLeg {
  const char* scenario;
  TimedCampaign campaign;
  mbpta::Summary summary;
  double pwcet_1e12 = 0.0; // 0 when the fit is not applicable
};

HvLeg run_leg(const char* scenario, std::uint32_t runs) {
  HvLeg leg;
  leg.scenario = scenario;
  leg.campaign = run_scenario_timed(scenario, runs);
  leg.summary = mbpta::summarise(leg.campaign.result.times);
  try {
    const mbpta::MbptaAnalysis analysis =
        mbpta::analyse(leg.campaign.result.times, analysis_mbpta(runs));
    leg.pwcet_1e12 = analysis.pwcet(1e-12);
  } catch (const std::invalid_argument&) {
    // Degenerate series (e.g. constant COTS times): no tail fit.
  }
  return leg;
}

} // namespace

int main() {
  const std::uint32_t runs = campaign_runs(300);
  print_header("Hypervisor campaigns: control task solo vs interference (" +
               std::to_string(runs) + " runs each)");

  std::vector<HvLeg> legs;
  for (const char* scenario :
       {"hv/control-solo", "hv/control+image", "hv/control+image-dsr",
        "hv/control+stress"}) {
    legs.push_back(run_leg(scenario, runs));
  }

  print_summary_table_header();
  for (const HvLeg& leg : legs) {
    print_summary_row(leg.scenario, leg.summary);
  }
  std::printf("\n%-22s %12s %12s\n", "configuration", "MOET", "pWCET@1e-12");
  for (const HvLeg& leg : legs) {
    if (leg.pwcet_1e12 > 0.0) {
      std::printf("%-22s %12.0f %12.0f\n", leg.scenario, leg.summary.max,
                  leg.pwcet_1e12);
    } else {
      std::printf("%-22s %12.0f %12s\n", leg.scenario, leg.summary.max,
                  "(no fit)");
    }
  }

  const HvLeg& solo = legs[0];
  const HvLeg& image = legs[1];
  std::printf("\ninterference inflation (image guest vs solo): MOET %+.1f%%\n",
              100.0 * (image.summary.max / solo.summary.max - 1.0));

  // Per-partition rows of the interference campaign.
  std::printf("\nper-partition report, %s:\n", image.scenario);
  std::printf("%s", trace::PartitionReport::build(
                        casestudy::partition_series(
                            image.campaign.result.samples))
                        .to_string()
                        .c_str());

  for (const HvLeg& leg : legs) {
    print_throughput(leg.scenario, leg.campaign);
  }

  // Determinism gate: one worker must reproduce the parallel digest.
  exec::EngineOptions one_worker;
  one_worker.workers = 1;
  const casestudy::CampaignResult sequential =
      exec::CampaignEngine(one_worker)
          .run(exec::ScenarioRegistry::global()
                   .at("hv/control+image")
                   .make_config(runs));
  const bool deterministic =
      trace::times_digest(sequential.times) ==
      trace::times_digest(image.campaign.result.times);
  std::printf("\ndigest %s (workers=1 %s)\n",
              trace::times_digest_hex(image.campaign.result.times).c_str(),
              deterministic ? "bit-identical" : "DIVERGED");

  const bool interference_visible =
      image.summary.min > solo.summary.max &&
      legs[3].summary.min > solo.summary.max;
  std::printf("shape check: interference measurable: %s; deterministic "
              "across worker counts: %s\n",
              interference_visible ? "yes" : "NO",
              deterministic ? "yes" : "NO");
  return interference_visible && deterministic ? 0 : 1;
}
