// E2 — Table I: "Performance counter readings for the control task".
//
// Paper values (LEON3 FPGA):
//            icmiss   dcmiss     L2miss    FPU    Instr
//   No Rand  126-127  2088       402-558   3504   163800
//   Sw Rand  154      2129-2131  398-555   3504   166748
//
// Shape to reproduce: DSR raises the L1 instruction misses (code is spread
// over pool pages), leaves FPU work identical, adds <2% instructions, and
// leaves the L2 miss ratio in the same band (paper: 17-24% vs 18-25%).
// Absolute values are simulator-scale, not FPGA-scale.
#include "bench_util.hpp"

using namespace proxima;
using namespace proxima::bench;
using namespace proxima::casestudy;

namespace {

void print_counter_row(const char* label, const CampaignResult& result) {
  const auto ic = counter_range(
      result, [](const RunSample& s) { return s.counters.icache_miss; });
  const auto dc = counter_range(
      result, [](const RunSample& s) { return s.counters.dcache_miss; });
  const auto l2 = counter_range(
      result, [](const RunSample& s) { return s.counters.l2_miss; });
  const auto fpu = counter_range(
      result, [](const RunSample& s) { return s.counters.fpu_ops; });
  const auto instr = counter_range(
      result, [](const RunSample& s) { return s.counters.instructions; });
  std::printf("%-10s %12s %14s %12s %12s %16s\n", label,
              range_text(ic).c_str(), range_text(dc).c_str(),
              range_text(l2).c_str(), range_text(fpu).c_str(),
              range_text(instr).c_str());
}

double mean_instr(const CampaignResult& result) {
  double sum = 0;
  for (const RunSample& sample : result.samples) {
    sum += static_cast<double>(sample.counters.instructions);
  }
  return sum / static_cast<double>(result.samples.size());
}

std::pair<double, double> ratio_range(const CampaignResult& result) {
  double lo = 1.0;
  double hi = 0.0;
  for (const RunSample& sample : result.samples) {
    const double r = sample.counters.l2_miss_ratio();
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  return {lo, hi};
}

} // namespace

int main() {
  const std::uint32_t runs = campaign_runs(300);
  print_header("Table I — performance counter readings (" +
               std::to_string(runs) + " runs each)");

  const CampaignResult cots =
      run_control_campaign(operation_config(Randomisation::kNone, runs));
  const CampaignResult dsr =
      run_control_campaign(operation_config(Randomisation::kDsr, runs));

  std::printf("%-10s %12s %14s %12s %12s %16s\n", "", "icmiss", "dcmiss",
              "L2miss", "FPU", "Instr");
  print_counter_row("No Rand", cots);
  print_counter_row("Sw Rand", dsr);

  const auto [cots_lo, cots_hi] = ratio_range(cots);
  const auto [dsr_lo, dsr_hi] = ratio_range(dsr);
  std::printf("\nL2 miss ratio: No Rand %.0f-%.0f%%, Sw Rand %.0f-%.0f%%  "
              "(paper: 18-25%% vs 17-24%%)\n",
              100 * cots_lo, 100 * cots_hi, 100 * dsr_lo, 100 * dsr_hi);

  const double overhead = mean_instr(dsr) / mean_instr(cots) - 1.0;
  std::printf("DSR dynamic instruction overhead: %.2f%%  (paper: <2%%)\n",
              100 * overhead);

  const auto cots_ic = counter_range(
      cots, [](const RunSample& s) { return s.counters.icache_miss; });
  const auto dsr_ic = counter_range(
      dsr, [](const RunSample& s) { return s.counters.icache_miss; });
  const bool shape_ok = overhead > 0.0 && overhead < 0.02 &&
                        dsr_ic.first > cots_ic.second;
  std::printf("shape check: 0 < overhead < 2%% and icmiss(DSR) > "
              "icmiss(COTS): %s\n",
              shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
