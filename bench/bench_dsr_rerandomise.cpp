// Microbench: the DSR re-randomisation path in isolation.
//
// Adaptive campaigns at high worker counts are dominated not by guest
// execution but by the per-run partition reboot: relocating every managed
// function into fresh pool chunks, rewriting the metadata tables, running
// the SPARC invalidation routine over the touched ranges, and — on the
// decode-cached cores — invalidating the predecoded dispatch entries for
// every rewritten word.  This bench isolates exactly that path (no
// activations are executed) and compares the batched relocation fast path
// (host-word block moves, range invalidations) against the original
// per-word store loop on every core:
//
//   * per-rerandomise wall time for the fast-sb core (superblock tier,
//     the default), the fast core, and the reference core (no decode
//     cache) — the fast-vs-reference delta is the decode-cache coherence
//     cost, the batched-vs-per-word delta is what the fast path buys;
//   * the guest-side work metered by DsrRuntime::Stats (relocations, bytes
//     copied, cache lines invalidated) per reboot, which is layout-
//     independent, identical across relocation paths by construction, and
//     so also serves as a correctness gate.
//
//   PROXIMA_RUNS  re-randomisations per leg (default 2000)
#include "bench_util.hpp"

#include "casestudy/control_task.hpp"
#include "casestudy/measured_target.hpp" // kControlStackTop
#include "core/dsr_pass.hpp"
#include "core/dsr_runtime.hpp"
#include "exec/seed.hpp"
#include "mem/hierarchy.hpp"
#include "trace/trace.hpp"

#include <chrono>
#include <cstdio>
#include <set>

using namespace proxima;

namespace {

struct Leg {
  const char* label = "";
  double seconds = 0.0;
  std::uint64_t reseeds = 0;
  dsr::DsrRuntime::Stats stats;   // accumulated over all reboots
  std::size_t distinct_entries = 0;

  double micros_per_reseed() const {
    return reseeds == 0 ? 0.0 : seconds * 1e6 / static_cast<double>(reseeds);
  }
};

/// The guest-visible relocation work: identical across cores AND across
/// the batched/per-word relocation paths (the batched path is a host-side
/// optimisation only).
bool same_guest_work(const dsr::DsrRuntime::Stats& a,
                     const dsr::DsrRuntime::Stats& b) {
  return a.reseeds == b.reseeds && a.relocations == b.relocations &&
         a.bytes_copied == b.bytes_copied &&
         a.lines_invalidated == b.lines_invalidated &&
         a.ondemand_reseeds == b.ondemand_reseeds;
}

/// Build the control-task DSR platform exactly like a campaign runner and
/// time `reseeds` partition reboots without executing any activation.
Leg run_leg(vm::VmCore core, bool batched, const char* label,
            std::uint64_t reseeds) {
  const casestudy::CampaignConfig config = [batched] {
    casestudy::CampaignConfig c;
    c.randomisation = casestudy::Randomisation::kDsr;
    c.dsr_options.batched_relocation = batched;
    return c;
  }();

  isa::Program program = casestudy::build_control_program(config.control);
  trace::instrument_function(program, "control_step");
  dsr::apply_pass(program, config.pass_options);
  const isa::LinkedImage image =
      isa::link(program, casestudy::control_layout(config.control,
                                                   config.layout,
                                                   casestudy::kControlStackTop));
  mem::GuestMemory memory;
  mem::MemoryHierarchy hierarchy(mem::leon3_hierarchy_config());
  vm::VmConfig vm_config;
  vm_config.core = core;
  vm::Vm cpu(memory, hierarchy, vm_config);
  image.load_into(memory);
  // Warm decode cache, like the runner: this is what makes every
  // subsequent relocation pay the predecoded-line invalidation cost.
  cpu.predecode(image.code_begin(), image.code_end() - image.code_begin());

  rng::Mwc layout_rng(1);
  dsr::DsrRuntime runtime(memory, hierarchy, image, layout_rng,
                          config.dsr_options);
  runtime.attach(cpu);

  Leg leg;
  leg.label = label;
  leg.reseeds = reseeds;
  std::set<std::uint32_t> entries;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t run = 0; run < reseeds; ++run) {
    layout_rng.seed(exec::derive_run_seed(
        config.layout_seed, exec::SeedStream::kLayout, run));
    runtime.rerandomise();
    entries.insert(runtime.entry_address());
  }
  leg.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  leg.stats = runtime.stats();
  leg.distinct_entries = entries.size();
  std::printf("%-28s %8.2f us/reseed   %6.1f MB/s copied   "
              "(%llu relocations, %llu lines invalidated)\n",
              label, leg.micros_per_reseed(),
              leg.seconds <= 0.0
                  ? 0.0
                  : static_cast<double>(leg.stats.bytes_copied) /
                        leg.seconds / 1e6,
              static_cast<unsigned long long>(leg.stats.relocations),
              static_cast<unsigned long long>(leg.stats.lines_invalidated));
  return leg;
}

} // namespace

int main() {
  const std::uint64_t reseeds = bench::campaign_runs(2000);
  bench::print_header(
      "DSR re-randomisation path (relocation + decode-cache invalidation), " +
      std::to_string(reseeds) + " reboots per leg");

  std::printf("batched relocation (default):\n");
  const Leg fast_sb = run_leg(vm::VmCore::kFastSb, true,
                              "fast-sb core (superblocks)", reseeds);
  const Leg fast = run_leg(vm::VmCore::kFast, true,
                           "fast core (decode cache)", reseeds);
  const Leg reference =
      run_leg(vm::VmCore::kReference, true, "reference core", reseeds);

  std::printf("\nper-word relocation (--no-batch path):\n");
  const Leg fast_sb_pw = run_leg(vm::VmCore::kFastSb, false,
                                 "fast-sb core (superblocks)", reseeds);
  const Leg fast_pw = run_leg(vm::VmCore::kFast, false,
                              "fast core (decode cache)", reseeds);
  const Leg reference_pw =
      run_leg(vm::VmCore::kReference, false, "reference core", reseeds);

  std::printf("\ndecode-cache coherence cost: %+.2f us/reseed (%+.1f%%)\n",
              fast.micros_per_reseed() - reference.micros_per_reseed(),
              reference.micros_per_reseed() <= 0.0
                  ? 0.0
                  : 100.0 * (fast.micros_per_reseed() /
                                 reference.micros_per_reseed() -
                             1.0));
  const auto speedup = [](const Leg& batched, const Leg& per_word) {
    return batched.micros_per_reseed() <= 0.0
               ? 0.0
               : per_word.micros_per_reseed() / batched.micros_per_reseed();
  };
  std::printf("batched speedup: fast-sb %.2fx, fast %.2fx, reference %.2fx\n",
              speedup(fast_sb, fast_sb_pw), speedup(fast, fast_pw),
              speedup(reference, reference_pw));

  // Gates: the guest-side work is a pure function of the layout stream, so
  // every core and both relocation paths must meter identical work; the
  // batched path must not be slower than the loop it replaces; and the
  // layouts must actually vary (a stuck entry address means the reseed is
  // a no-op).
  const bool same_work = same_guest_work(fast_sb.stats, fast.stats) &&
                         same_guest_work(fast_sb.stats, reference.stats);
  const bool same_paths = same_guest_work(fast_sb.stats, fast_sb_pw.stats) &&
                          same_guest_work(fast.stats, fast_pw.stats) &&
                          same_guest_work(reference.stats, reference_pw.stats);
  const bool batched_wins =
      fast_sb.micros_per_reseed() <= fast_sb_pw.micros_per_reseed();
  const bool layouts_vary = fast_sb.distinct_entries > reseeds / 4;
  std::printf("shape check: identical guest-side work across cores: %s; "
              "across relocation paths: %s; batched <= per-word on "
              "fast-sb: %s; layouts vary (%zu distinct entries): %s\n",
              same_work ? "yes" : "NO", same_paths ? "yes" : "NO",
              batched_wins ? "yes" : "NO", fast_sb.distinct_entries,
              layouts_vary ? "yes" : "NO");
  return same_work && same_paths && batched_wins && layouts_vary ? 0 : 1;
}
