// A3 — What does each DSR mechanism contribute? (Sections III.B.1/B.2)
//
// DSR randomises two classes of memory objects: function code and stack
// frames.  This ablation runs the analysis campaign with each mechanism
// enabled in isolation.  The transformed binary is IDENTICAL in all four
// configurations (same pass output, same instruction overhead); only the
// runtime randomisation toggles change — isolating the randomisation
// effect from the instrumentation effect.
#include "bench_util.hpp"

using namespace proxima;
using namespace proxima::bench;
using namespace proxima::casestudy;

namespace {

mbpta::Summary run_components(bool code, bool stack, std::uint32_t runs) {
  CampaignConfig config = analysis_config(Randomisation::kDsr, runs);
  config.dsr_options.randomise_code = code;
  config.dsr_options.randomise_stack = stack;
  return mbpta::summarise(run_control_campaign(config).times);
}

} // namespace

int main() {
  const std::uint32_t runs = campaign_runs(250);
  print_header("Ablation A3 — code vs stack randomisation (" +
               std::to_string(runs) + " runs each)");

  const mbpta::Summary none = run_components(false, false, runs);
  const mbpta::Summary code_only = run_components(true, false, runs);
  const mbpta::Summary stack_only = run_components(false, true, runs);
  const mbpta::Summary full = run_components(true, true, runs);

  print_summary_table_header();
  print_summary_row("neither (instr. only)", none);
  print_summary_row("code only", code_only);
  print_summary_row("stack only", stack_only);
  print_summary_row("full DSR", full);

  std::printf("\njitter (stddev): neither=%.1f code=%.1f stack=%.1f full=%.1f\n",
              none.stddev, code_only.stddev, stack_only.stddev, full.stddev);
  std::printf("(with neither mechanism the platform is deterministic: the\n"
              " pass overhead alone provides no randomisation)\n");

  // The stack mechanism is what dissolves the COTS bad-layout congruence
  // (the recovery progress word moves), so stack-only must already drop
  // the MOET relative to the pinned configuration.
  const bool shape = none.stddev < 1.0 && full.stddev > 0.0 &&
                     code_only.stddev > 0.0 && stack_only.stddev > 0.0;
  std::printf("shape check: both mechanisms contribute jitter, neither "
              "alone is degenerate: %s\n",
              shape ? "yes" : "NO");
  return shape ? 0 : 1;
}
